package firal_test

import (
	"context"
	"errors"
	"testing"
	"time"

	firal "repro"
	"repro/internal/parallel"
)

// TestRunContextDefaultsToConfigSchedule: without WithRounds/WithBudget
// the session follows the Config's recorded schedule.
func TestRunContextDefaultsToConfigSchedule(t *testing.T) {
	cfg := smallConfig(20) // Rounds: 3, Budget: 8
	l, err := firal.NewLearner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := l.RunContext(context.Background(), firal.Random())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != cfg.Rounds {
		t.Fatalf("got %d reports, want %d", len(reports), cfg.Rounds)
	}
	if len(reports[0].Selected) != cfg.Budget {
		t.Fatalf("round 1 selected %d, want %d", len(reports[0].Selected), cfg.Budget)
	}
}

func TestRunContextRequiresBudget(t *testing.T) {
	cfg := smallConfig(21)
	cfg.Rounds, cfg.Budget = 0, 0
	l, err := firal.NewLearner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.RunContext(context.Background(), firal.Random()); !errors.Is(err, firal.ErrBadConfig) {
		t.Fatalf("missing budget not rejected: %v", err)
	}
}

func TestObserverStreamsEveryRound(t *testing.T) {
	l, err := firal.NewLearner(smallConfig(22))
	if err != nil {
		t.Fatal(err)
	}
	var streamed []int
	reports, err := l.RunContext(context.Background(), firal.Random(),
		firal.WithRounds(3), firal.WithBudget(5),
		firal.WithObserver(func(r *firal.RoundReport) {
			streamed = append(streamed, r.Round)
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(reports) {
		t.Fatalf("observer saw %d rounds, session returned %d", len(streamed), len(reports))
	}
	for i, round := range streamed {
		if round != i+1 {
			t.Fatalf("observer round order %v", streamed)
		}
	}
}

func TestStopCriterionEndsSessionCleanly(t *testing.T) {
	l, err := firal.NewLearner(smallConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	// Target accuracy 0 fires after the first round: any accuracy ≥ 0.
	reports, err := l.RunContext(context.Background(), firal.Random(),
		firal.WithRounds(10), firal.WithBudget(5),
		firal.WithStopCriterion(firal.TargetAccuracy(0)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("stop criterion did not fire after round 1: %d reports", len(reports))
	}
}

func TestMaxDurationStops(t *testing.T) {
	l, err := firal.NewLearner(smallConfig(24))
	if err != nil {
		t.Fatal(err)
	}
	// An already-expired budget still finishes the running round, then
	// stops.
	reports, err := l.RunContext(context.Background(), firal.Random(),
		firal.WithRounds(10), firal.WithBudget(5),
		firal.WithStopCriterion(firal.MaxDuration(-time.Second)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("wall-clock criterion did not stop the session: %d reports", len(reports))
	}
}

func TestMaxDurationAnchorsAtFirstReport(t *testing.T) {
	// Time spent before the first report (learner construction, warm-up)
	// must not count against the budget: the deadline anchors when the
	// criterion first sees a report, not at construction.
	crit := firal.MaxDuration(80 * time.Millisecond)
	time.Sleep(100 * time.Millisecond) // longer than the whole budget
	if stop, _ := crit(&firal.RoundReport{}); stop {
		t.Fatal("budget charged for pre-run setup time")
	}
	time.Sleep(100 * time.Millisecond)
	if stop, _ := crit(&firal.RoundReport{}); !stop {
		t.Fatal("budget did not fire after elapsing from first report")
	}
}

func TestPoolExhaustedCriterionAndReportField(t *testing.T) {
	cfg := smallConfig(25)
	l, err := firal.NewLearner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lastReason string
	exhausted := firal.PoolExhausted()
	reports, err := l.RunContext(context.Background(), firal.Random(),
		firal.WithRounds(0), // uncapped: run until the pool is gone
		firal.WithBudget(64),
		firal.WithStopCriterion(func(r *firal.RoundReport) (bool, string) {
			stop, reason := exhausted(r)
			if stop {
				lastReason = reason
			}
			return stop, reason
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	last := reports[len(reports)-1]
	if last.PoolRemaining != 0 {
		t.Fatalf("pool not exhausted: %d remaining", last.PoolRemaining)
	}
	if lastReason == "" {
		t.Fatal("PoolExhausted criterion never fired")
	}
	want := len(cfg.PoolX)
	var got int
	for _, r := range reports {
		got += len(r.Selected)
	}
	if got != want {
		t.Fatalf("selected %d of %d pool points", got, want)
	}
}

func TestWithParallelismRestoresWorkerCount(t *testing.T) {
	before := parallel.Workers()
	l, err := firal.NewLearner(smallConfig(26))
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.RunContext(context.Background(), firal.Random(),
		firal.WithRounds(1), firal.WithBudget(3),
		firal.WithParallelism(1),
		firal.WithObserver(func(r *firal.RoundReport) {
			if parallel.Workers() != 1 {
				t.Errorf("worker count inside session: %d", parallel.Workers())
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if parallel.Workers() != before {
		t.Fatalf("worker count not restored: %d, want %d", parallel.Workers(), before)
	}
}

// TestSelectUnderCancelledContextReturnsPromptly: a Select entered with an
// already-cancelled context must return ctx.Err() without doing work.
func TestSelectUnderCancelledContextReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := firal.SelectorOptions{FIRAL: firal.FIRALOptions{MaxRelaxIterations: 100}}
	for _, name := range builtinSelectors {
		sel, err := firal.New(name, opts)
		if err != nil {
			t.Fatal(err)
		}
		l, err := firal.NewLearner(smallConfig(27))
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		_, err = l.StepContext(ctx, sel, 5)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: want context.Canceled, got %v", name, err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("%s: cancelled Select took %s", name, elapsed)
		}
	}
}

// TestRunContextAbortsMidRelaxWithPartialReports: the context is cancelled
// while round 2's Approx-FIRAL selection is already inside the selector —
// after the session's loop-top and StepContext checks have passed — so the
// abort must come from the cancellation checks inside the RELAX mirror
// descent. The completed round-1 report is still returned.
func TestRunContextAbortsMidRelaxWithPartialReports(t *testing.T) {
	l, err := firal.NewLearner(smallConfig(28))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inner := firal.ApproxFIRAL(firal.FIRALOptions{MaxRelaxIterations: 50, Probes: 5})
	round := 0
	sel := firal.SelectorFunc("cancel-mid-select", func(ctx context.Context, s *firal.State, b int) ([]int, error) {
		round++
		if round == 2 {
			// Cancel after every pre-selection check has already passed;
			// only the RELAX-internal polling can observe it.
			cancel()
		}
		return inner.Select(ctx, s, b)
	})
	reports, err := l.RunContext(ctx, sel, firal.WithRounds(5), firal.WithBudget(6))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(reports) != 1 {
		t.Fatalf("want 1 partial report from the completed round, got %d", len(reports))
	}
	if reports[0].Round != 1 || len(reports[0].Selected) != 6 {
		t.Fatalf("partial report corrupted: %+v", reports[0])
	}
}

// TestDistributedCancellationTerminatesAllRanks: the collective
// cancellation path of the distributed selector stops every rank without
// deadlocking.
func TestDistributedCancellationTerminatesAllRanks(t *testing.T) {
	l, err := firal.NewLearner(smallConfig(29))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dist := firal.DistributedFIRAL(3, firal.FIRALOptions{MaxRelaxIterations: 50, Probes: 5})
	// Cancel only once the selection is underway, so the pre-selection
	// checks cannot short-circuit and the ranks themselves must agree to
	// stop.
	sel := firal.SelectorFunc("cancel-mid-dist", func(ctx context.Context, s *firal.State, b int) ([]int, error) {
		cancel()
		return dist.Select(ctx, s, b)
	})
	done := make(chan struct{})
	var runErr error
	go func() {
		defer close(done)
		_, runErr = l.StepContext(ctx, sel, 5)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("distributed cancellation deadlocked")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", runErr)
	}
}
