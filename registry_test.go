package firal_test

import (
	"context"
	"sort"
	"strings"
	"testing"

	firal "repro"
)

// builtinSelectors are the canonical names every release registers.
var builtinSelectors = []string{
	"Approx-FIRAL",
	"Dist-FIRAL",
	"Entropy",
	"Exact-FIRAL",
	"K-Means",
	"Least-Confidence",
	"Margin",
	"Random",
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := firal.Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range builtinSelectors {
		if !have[want] {
			t.Fatalf("Names() missing built-in %q: %v", want, names)
		}
	}
}

func TestNewIsCaseInsensitive(t *testing.T) {
	for _, name := range []string{"approx-firal", "APPROX-FIRAL", "Approx-Firal", " approx-firal "} {
		sel, err := firal.New(name, firal.SelectorOptions{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if sel.Name() != "Approx-FIRAL" {
			t.Fatalf("New(%q) built %q", name, sel.Name())
		}
	}
}

func TestNewResolvesAliases(t *testing.T) {
	for alias, want := range map[string]string{
		"firal":             "Approx-FIRAL",
		"kmeans":            "K-Means",
		"leastconfidence":   "Least-Confidence",
		"distributed-firal": "Approx-FIRAL(dist)",
		"dist-firal":        "Approx-FIRAL(dist)",
	} {
		sel, err := firal.New(alias, firal.SelectorOptions{Ranks: 2})
		if err != nil {
			t.Fatalf("New(%q): %v", alias, err)
		}
		if sel.Name() != want {
			t.Fatalf("New(%q) built %q, want %q", alias, sel.Name(), want)
		}
	}
}

func TestNewUnknownNameErrors(t *testing.T) {
	_, err := firal.New("bogus-strategy", firal.SelectorOptions{})
	if err == nil {
		t.Fatal("unknown selector accepted")
	}
	if !strings.Contains(err.Error(), "bogus-strategy") {
		t.Fatalf("error does not name the unknown selector: %v", err)
	}
	if !strings.Contains(err.Error(), "Approx-FIRAL") {
		t.Fatalf("error does not list registered selectors: %v", err)
	}
}

func TestRegisterCustomSelector(t *testing.T) {
	firal.Register("Test-First-B", func(o firal.SelectorOptions) (firal.Selector, error) {
		return firal.SelectorFunc("Test-First-B", func(ctx context.Context, s *firal.State, b int) ([]int, error) {
			picked := make([]int, b)
			for i := range picked {
				picked[i] = i
			}
			return picked, nil
		}), nil
	})
	sel, err := firal.New("test-first-b", firal.SelectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := firal.NewLearner(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := l.StepContext(context.Background(), sel, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Selected) != 4 {
		t.Fatalf("custom selector picked %d points", len(rep.Selected))
	}
	found := false
	for _, n := range firal.Names() {
		if n == "Test-First-B" {
			found = true
		}
	}
	if !found {
		t.Fatal("custom selector missing from Names()")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	firal.Register("Random", func(o firal.SelectorOptions) (firal.Selector, error) {
		return firal.Random(), nil
	})
}

func TestEveryRegisteredSelectorRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all strategies")
	}
	opts := firal.SelectorOptions{
		FIRAL: firal.FIRALOptions{MaxRelaxIterations: 8, Probes: 5},
		Ranks: 2,
	}
	for _, name := range builtinSelectors {
		sel, err := firal.New(name, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		l, err := firal.NewLearner(smallConfig(12))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := l.StepContext(context.Background(), sel, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rep.Selected) != 5 {
			t.Fatalf("%s: selected %d points", name, len(rep.Selected))
		}
	}
}
