package firal

// RoundObserver receives each RoundReport as soon as its round completes,
// while the session is still running — the streaming complement to the
// slice RunContext returns at the end. Observers run synchronously on the
// session goroutine; a slow observer slows the session. The report is
// shared with the returned slice, so observers must not mutate it.
type RoundObserver func(*RoundReport)

// runConfig is the resolved configuration of one RunContext session.
type runConfig struct {
	// rounds caps the round count; 0 means no cap (run until the pool is
	// exhausted or a stop criterion fires).
	rounds    int
	budget    int
	stops     []StopCriterion
	observers []RoundObserver
	// workers overrides the data-parallel worker count for the run; 0
	// keeps the current setting.
	workers int
}

// RunOption customizes a RunContext session.
type RunOption func(*runConfig)

// WithRounds caps the session at n rounds. n <= 0 removes the cap: the
// session runs until the pool is exhausted or a stop criterion fires.
// Without this option the session defaults to the Config.Rounds schedule
// (when positive).
func WithRounds(n int) RunOption {
	return func(rc *runConfig) {
		if n < 0 {
			n = 0
		}
		rc.rounds = n
	}
}

// WithBudget sets the number of points labeled per round. Without this
// option the session defaults to the Config.Budget schedule.
func WithBudget(b int) RunOption {
	return func(rc *runConfig) { rc.budget = b }
}

// WithStopCriterion adds a stop criterion, evaluated after every round;
// the first criterion that fires ends the session cleanly. The option may
// be repeated — criteria combine as "any of".
func WithStopCriterion(c StopCriterion) RunOption {
	return func(rc *runConfig) {
		if c != nil {
			rc.stops = append(rc.stops, c)
		}
	}
}

// WithObserver adds a RoundObserver that streams every completed round's
// report. The option may be repeated; observers fire in registration
// order.
func WithObserver(o RoundObserver) RunOption {
	return func(rc *runConfig) {
		if o != nil {
			rc.observers = append(rc.observers, o)
		}
	}
}

// WithParallelism caps the data-parallel worker count (internal/parallel)
// for the duration of the session. n = 1 simulates a single-threaded
// device; n <= 0 is ignored. The cap cannot raise the worker count above
// the process-wide base (GOMAXPROCS, or parallel.SetMaxWorkers).
//
// Sessions running concurrently in one process are safe: each holds its
// own scoped limit and the effective worker count is the minimum of the
// active limits, so a session never observes more parallelism than it
// asked for — though it may observe less while a stricter concurrent
// session is running — and ending a session removes exactly its own cap.
func WithParallelism(n int) RunOption {
	return func(rc *runConfig) {
		if n > 0 {
			rc.workers = n
		}
	}
}
