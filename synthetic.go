package firal

import (
	"repro/internal/dataset"
	"repro/internal/mat"
)

// Synthetic describes a synthetic embedding benchmark shaped like one of
// the paper's Table V datasets (see DESIGN.md § 3 for why synthetic
// sub-Gaussian class mixtures preserve the selector-ranking behaviour of
// the real embeddings).
type Synthetic struct {
	Name           string
	Classes, Dim   int
	PoolSize       int
	EvalSize       int
	InitPerClass   int
	Rounds, Budget int
	// ImbalanceRatio is the max class-size ratio in the pool (1 =
	// balanced).
	ImbalanceRatio float64
	// Separation and Noise control the mixture geometry (0 = defaults).
	Separation, Noise float64
}

func fromInternal(c dataset.Config) Synthetic {
	return Synthetic{
		Name: c.Name, Classes: c.Classes, Dim: c.Dim,
		PoolSize: c.PoolSize, EvalSize: c.EvalSize,
		InitPerClass: c.InitPerClass, Rounds: c.Rounds, Budget: c.Budget,
		ImbalanceRatio: c.ImbalanceRatio,
		Separation:     c.Separation, Noise: c.Noise,
	}
}

func (s Synthetic) internal() dataset.Config {
	return dataset.Config{
		Name: s.Name, Classes: s.Classes, Dim: s.Dim,
		PoolSize: s.PoolSize, EvalSize: s.EvalSize,
		InitPerClass: s.InitPerClass, Rounds: s.Rounds, Budget: s.Budget,
		ImbalanceRatio: s.ImbalanceRatio,
		Separation:     s.Separation, Noise: s.Noise,
	}
}

// Scale multiplies pool and eval sizes by f (floored at one point per
// class) for smaller runs.
func (s Synthetic) Scale(f float64) Synthetic {
	return fromInternal(s.internal().Scale(f))
}

// Generate realizes the benchmark with the given seed as a Learner Config.
func (s Synthetic) Generate(seed int64) Config {
	ds := dataset.Generate(s.internal(), seed)
	return Config{
		PoolX:    matRows(ds.PoolX),
		PoolY:    ds.PoolY,
		LabeledX: matRows(ds.LabeledX),
		LabeledY: ds.LabeledY,
		EvalX:    matRows(ds.EvalX),
		EvalY:    ds.EvalY,
		Classes:  s.Classes,
		Seed:     seed,
		Rounds:   s.Rounds,
		Budget:   s.Budget,
	}
}

func matRows(m *mat.Dense) [][]float64 {
	out := make([][]float64, m.Rows)
	for i := range out {
		out[i] = append([]float64(nil), m.Row(i)...)
	}
	return out
}

// The seven Table V benchmarks, paper-sized (use Scale for CPU runs).

// MNISTLike mirrors the MNIST row of Table V.
func MNISTLike() Synthetic { return fromInternal(dataset.MNIST()) }

// CIFAR10Like mirrors the CIFAR-10 row of Table V.
func CIFAR10Like() Synthetic { return fromInternal(dataset.CIFAR10()) }

// ImbCIFAR10Like mirrors imb-CIFAR-10 (10:1 pool imbalance).
func ImbCIFAR10Like() Synthetic { return fromInternal(dataset.ImbCIFAR10()) }

// ImageNet50Like mirrors ImageNet-50.
func ImageNet50Like() Synthetic { return fromInternal(dataset.ImageNet50()) }

// ImbImageNet50Like mirrors imb-ImageNet-50 (8:1 pool imbalance).
func ImbImageNet50Like() Synthetic { return fromInternal(dataset.ImbImageNet50()) }

// Caltech101Like mirrors Caltech-101 (10:1 imbalance).
func Caltech101Like() Synthetic { return fromInternal(dataset.Caltech101()) }

// ImageNet1kLike mirrors ImageNet-1k.
func ImageNet1kLike() Synthetic { return fromInternal(dataset.ImageNet1k()) }

// TableV returns all seven benchmarks in paper order.
func TableV() []Synthetic {
	out := make([]Synthetic, 0, 7)
	for _, c := range dataset.TableV() {
		out = append(out, fromInternal(c))
	}
	return out
}
