package firal_test

import (
	"context"
	"math"
	"testing"

	firal "repro"
)

func smallConfig(seed int64) firal.Config {
	s := firal.Synthetic{
		Name: "unit", Classes: 4, Dim: 8, PoolSize: 160, EvalSize: 200,
		InitPerClass: 1, Rounds: 3, Budget: 8, Separation: 1.6,
	}
	return s.Generate(seed)
}

func TestNewLearnerValidation(t *testing.T) {
	cfg := smallConfig(1)
	if _, err := firal.NewLearner(cfg); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Classes = 1
	if _, err := firal.NewLearner(bad); err == nil {
		t.Fatal("accepted 1 class")
	}
	bad2 := cfg
	bad2.PoolY = bad2.PoolY[:3]
	if _, err := firal.NewLearner(bad2); err == nil {
		t.Fatal("accepted mismatched pool labels")
	}
	bad3 := cfg
	bad3.LabeledY = append([]int(nil), bad3.LabeledY...)
	bad3.LabeledY[0] = 99
	if _, err := firal.NewLearner(bad3); err == nil {
		t.Fatal("accepted out-of-range label")
	}
}

func TestLearnerStepBookkeeping(t *testing.T) {
	cfg := smallConfig(2)
	l, err := firal.NewLearner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	startLabeled := l.LabeledCount()
	startPool := l.PoolRemaining()
	rep, err := l.Step(firal.Random(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if l.LabeledCount() != startLabeled+8 {
		t.Fatalf("labeled count %d", l.LabeledCount())
	}
	if l.PoolRemaining() != startPool-8 {
		t.Fatalf("pool remaining %d", l.PoolRemaining())
	}
	if rep.LabeledCount != l.LabeledCount() || rep.Round != 1 {
		t.Fatalf("report %+v", rep)
	}
	if len(rep.Selected) != 8 {
		t.Fatalf("selected %d", len(rep.Selected))
	}
	if rep.PoolAccuracy <= 0 || rep.EvalAccuracy <= 0 {
		t.Fatalf("accuracies not recorded: %+v", rep)
	}
}

func TestSelectedIndicesAreOriginalAndUnique(t *testing.T) {
	cfg := smallConfig(3)
	l, err := firal.NewLearner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for r := 0; r < 4; r++ {
		rep, err := l.Step(firal.Random(), 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range rep.Selected {
			if i < 0 || i >= len(cfg.PoolX) {
				t.Fatalf("index %d out of original pool range", i)
			}
			if seen[i] {
				t.Fatalf("point %d labeled twice across rounds", i)
			}
			seen[i] = true
		}
	}
}

func TestAllSelectorsRunOneRound(t *testing.T) {
	opts := firal.FIRALOptions{MaxRelaxIterations: 10, Probes: 5}
	selectors := []firal.Selector{
		firal.Random(),
		firal.KMeans(),
		firal.Entropy(),
		firal.Margin(),
		firal.LeastConfidence(),
		firal.ApproxFIRAL(opts),
		firal.ExactFIRAL(opts),
		firal.DistributedFIRAL(3, opts),
	}
	for _, sel := range selectors {
		cfg := smallConfig(4)
		l, err := firal.NewLearner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := l.Step(sel, 6)
		if err != nil {
			t.Fatalf("%s: %v", sel.Name(), err)
		}
		if len(rep.Selected) != 6 {
			t.Fatalf("%s: selected %d", sel.Name(), len(rep.Selected))
		}
	}
}

func TestAccuracyImprovesWithLabels(t *testing.T) {
	cfg := smallConfig(5)
	l, err := firal.NewLearner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := l.Run(firal.ApproxFIRAL(firal.FIRALOptions{MaxRelaxIterations: 15, Probes: 5}), 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	if reports[2].EvalAccuracy < reports[0].EvalAccuracy-0.05 {
		t.Fatalf("accuracy regressed: %g → %g", reports[0].EvalAccuracy, reports[2].EvalAccuracy)
	}
	if reports[2].EvalAccuracy < 0.8 {
		t.Fatalf("final accuracy %g too low", reports[2].EvalAccuracy)
	}
}

// TestFIRALBeatsEntropyEarly mirrors the paper's headline observation
// (Fig. 2): at small label counts uncertainty sampling is the weakest
// method, while FIRAL is strong and stable. Averaged over seeds to damp
// run-to-run variance.
func TestFIRALBeatsEntropyEarly(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy comparison is slow")
	}
	var firalAcc, entAcc float64
	const trials = 3
	for s := int64(0); s < trials; s++ {
		cfgF := smallConfig(100 + s)
		lf, err := firal.NewLearner(cfgF)
		if err != nil {
			t.Fatal(err)
		}
		repF, err := lf.Run(firal.ApproxFIRAL(firal.FIRALOptions{MaxRelaxIterations: 20}), 2, 6)
		if err != nil {
			t.Fatal(err)
		}
		firalAcc += repF[len(repF)-1].EvalAccuracy

		cfgE := smallConfig(100 + s)
		le, err := firal.NewLearner(cfgE)
		if err != nil {
			t.Fatal(err)
		}
		repE, err := le.Run(firal.Entropy(), 2, 6)
		if err != nil {
			t.Fatal(err)
		}
		entAcc += repE[len(repE)-1].EvalAccuracy
	}
	firalAcc /= trials
	entAcc /= trials
	if firalAcc < entAcc-0.02 {
		t.Fatalf("Approx-FIRAL (%.3f) should not trail Entropy (%.3f) at small label counts", firalAcc, entAcc)
	}
}

func TestDistributedMatchesSerialThroughPublicAPI(t *testing.T) {
	opts := firal.FIRALOptions{MaxRelaxIterations: 6, Probes: 5, Seed: 11}
	cfg := smallConfig(6)
	ls, err := firal.NewLearner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	repS, err := ls.Step(firal.ApproxFIRAL(opts), 5)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := firal.NewLearner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	repD, err := ld.Step(firal.DistributedFIRAL(3, opts), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range repS.Selected {
		if repS.Selected[i] != repD.Selected[i] {
			t.Fatalf("serial %v vs distributed %v", repS.Selected, repD.Selected)
		}
	}
}

func TestSelectorFuncValidation(t *testing.T) {
	cfg := smallConfig(7)
	l, err := firal.NewLearner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dup := firal.SelectorFunc("dup", func(ctx context.Context, s *firal.State, b int) ([]int, error) {
		return []int{0, 0}, nil
	})
	if _, err := l.Step(dup, 2); err == nil {
		t.Fatal("duplicate selection not rejected")
	}
	oob := firal.SelectorFunc("oob", func(ctx context.Context, s *firal.State, b int) ([]int, error) {
		return []int{s.NumPool()}, nil
	})
	if _, err := l.Step(oob, 1); err == nil {
		t.Fatal("out-of-range selection not rejected")
	}
}

func TestStateAccessors(t *testing.T) {
	cfg := smallConfig(8)
	l, err := firal.NewLearner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := firal.SelectorFunc("probe", func(ctx context.Context, s *firal.State, b int) ([]int, error) {
		if s.NumPool() != len(cfg.PoolX) {
			t.Errorf("NumPool %d", s.NumPool())
		}
		if s.Dim() != 8 || s.Classes() != 4 {
			t.Errorf("Dim/Classes %d/%d", s.Dim(), s.Classes())
		}
		if s.NumLabeled() != 4 {
			t.Errorf("NumLabeled %d", s.NumLabeled())
		}
		if len(s.PoolPoint(0)) != 8 || len(s.LabeledPoint(0)) != 8 {
			t.Error("point accessors wrong length")
		}
		p := s.PoolProbabilities(0)
		var sum float64
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("probabilities sum %g", sum)
		}
		return []int{0}, nil
	})
	if _, err := l.Step(probe, 1); err != nil {
		t.Fatal(err)
	}
}

func TestModelPublicInterface(t *testing.T) {
	cfg := smallConfig(9)
	l, err := firal.NewLearner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := l.Model()
	pred := m.Predict(cfg.EvalX[:5])
	if len(pred) != 5 {
		t.Fatalf("predictions %d", len(pred))
	}
	probs := m.Probabilities(cfg.EvalX[:5])
	if len(probs) != 5 || len(probs[0]) != 4 {
		t.Fatal("probabilities shape wrong")
	}
	if acc := m.Accuracy(cfg.EvalX, cfg.EvalY); acc <= 0 || acc > 1 {
		t.Fatalf("accuracy %g", acc)
	}
}

func TestTableVPublic(t *testing.T) {
	if len(firal.TableV()) != 7 {
		t.Fatal("TableV should list 7 benchmarks")
	}
	c := firal.Caltech101Like()
	if c.Classes != 101 || c.ImbalanceRatio != 10 {
		t.Fatalf("Caltech-101 config %+v", c)
	}
	scaled := firal.ImageNet1kLike().Scale(0.1)
	if scaled.PoolSize != 5000 {
		t.Fatalf("scaled pool %d", scaled.PoolSize)
	}
}
