package firal

import (
	"context"

	"repro/internal/baselines"
	"repro/internal/distfiral"
	"repro/internal/firal"
	"repro/internal/hessian"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/rnd"
)

// State is the Selector view of one active-learning round: the remaining
// pool, the labeled set, and the current classifier's probabilities.
// Accessors return live views — do not modify them.
type State struct {
	poolX     *mat.Dense
	poolProbs *mat.Dense // full softmax, n×c
	labX      *mat.Dense
	labProbs  *mat.Dense
	pool      *hessian.Set // reduced probabilities (c−1 columns)
	labeled   *hessian.Set
	seed      int64
}

// NumPool returns the number of remaining pool points.
func (s *State) NumPool() int { return s.poolX.Rows }

// Dim returns the feature dimension d.
func (s *State) Dim() int { return s.poolX.Cols }

// Classes returns the number of classes c.
func (s *State) Classes() int { return s.poolProbs.Cols }

// PoolPoint returns pool point i's feature vector (view).
func (s *State) PoolPoint(i int) []float64 { return s.poolX.Row(i) }

// PoolProbabilities returns the classifier's class probabilities for pool
// point i (view).
func (s *State) PoolProbabilities(i int) []float64 { return s.poolProbs.Row(i) }

// NumLabeled returns the labeled-set size.
func (s *State) NumLabeled() int { return s.labX.Rows }

// LabeledPoint returns labeled point i's feature vector (view).
func (s *State) LabeledPoint(i int) []float64 { return s.labX.Row(i) }

// Seed returns the per-round RNG seed stochastic selectors should use.
func (s *State) Seed() int64 { return s.seed }

// Selector chooses b pool indices (into the current pool ordering) to
// label. Implementations must return distinct, in-range indices, and must
// honor ctx: a long-running selection aborts with ctx.Err() when the
// context is cancelled or its deadline passes.
type Selector interface {
	// Name identifies the strategy in reports.
	Name() string
	// Select picks b distinct pool indices from the state.
	Select(ctx context.Context, s *State, b int) ([]int, error)
}

// FIRALOptions configure the FIRAL selectors.
type FIRALOptions struct {
	// Eta is the ROUND learning rate η; 0 uses the Theorem-1 default
	// 8·√(ẽd).
	Eta float64
	// EtaGrid, when non-empty, tunes η per round by maximizing
	// min_k λ_min((H)_k) over the grid (§ IV-A).
	EtaGrid []float64
	// Probes is the number of Hutchinson Rademacher vectors s (default
	// 10). Approx only.
	Probes int
	// CGTol is the CG relative-residual tolerance (default 0.1). Approx
	// only.
	CGTol float64
	// MaxRelaxIterations caps mirror descent (default 100).
	MaxRelaxIterations int
	// Seed seeds the Rademacher probes; 0 inherits the learner seed.
	Seed int64
}

func (o FIRALOptions) relax(seed int64) firal.RelaxOptions {
	if o.Seed != 0 {
		seed = o.Seed
	}
	return firal.RelaxOptions{
		MaxIter: o.MaxRelaxIterations,
		Probes:  o.Probes,
		CGTol:   o.CGTol,
		Seed:    seed,
	}
}

func (o FIRALOptions) options(seed int64) firal.Options {
	return firal.Options{
		Relax:   o.relax(seed),
		Eta:     o.Eta,
		EtaGrid: o.EtaGrid,
	}
}

type funcSelector struct {
	name string
	fn   func(ctx context.Context, s *State, b int) ([]int, error)
}

func (f *funcSelector) Name() string { return f.name }

func (f *funcSelector) Select(ctx context.Context, s *State, b int) ([]int, error) {
	return f.fn(ctx, s, b)
}

// SelectorFunc builds a Selector from a function, for custom strategies.
func SelectorFunc(name string, fn func(ctx context.Context, s *State, b int) ([]int, error)) Selector {
	return &funcSelector{name: name, fn: fn}
}

// Random selects uniformly at random (§ IV-A baseline 1).
func Random() Selector {
	return SelectorFunc("Random", func(ctx context.Context, s *State, b int) ([]int, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return baselines.Random(s.NumPool(), b, rnd.New(s.seed)), nil
	})
}

// KMeans clusters the pool into b clusters and selects the points nearest
// the centers (§ IV-A baseline 2).
func KMeans() Selector {
	return SelectorFunc("K-Means", func(ctx context.Context, s *State, b int) ([]int, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return baselines.KMeans(s.poolX, b, rnd.New(s.seed)), nil
	})
}

// Entropy selects the b most uncertain points by predictive entropy
// (§ IV-A baseline 3).
func Entropy() Selector {
	return SelectorFunc("Entropy", func(ctx context.Context, s *State, b int) ([]int, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return baselines.Entropy(s.poolProbs, b), nil
	})
}

// Margin selects the b points with the smallest top-two probability
// margin (margin-based uncertainty sampling; not in the paper's
// comparison but a standard active-learning baseline).
func Margin() Selector {
	return SelectorFunc("Margin", func(ctx context.Context, s *State, b int) ([]int, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return baselines.Margin(s.poolProbs, b), nil
	})
}

// LeastConfidence selects the b points whose predicted class has the
// lowest probability.
func LeastConfidence() Selector {
	return SelectorFunc("Least-Confidence", func(ctx context.Context, s *State, b int) ([]int, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return baselines.LeastConfidence(s.poolProbs, b), nil
	})
}

// ApproxFIRAL is the paper's contribution: the fast RELAX (Algorithm 2) +
// diagonal ROUND (Algorithm 3) selector. Cancelling the context aborts
// mid-RELAX (the mirror-descent loop and the inner CG solves both poll
// it).
func ApproxFIRAL(o FIRALOptions) Selector {
	return SelectorFunc("Approx-FIRAL", func(ctx context.Context, s *State, b int) ([]int, error) {
		p := firal.NewProblem(s.labeled, s.pool)
		res, err := firal.SelectApprox(ctx, p, b, o.options(s.seed))
		if err != nil {
			return nil, err
		}
		return res.Selected, nil
	})
}

// ExactFIRAL is the original Algorithm 1 (dense Hessians; use only at
// small n, d, c).
func ExactFIRAL(o FIRALOptions) Selector {
	return SelectorFunc("Exact-FIRAL", func(ctx context.Context, s *State, b int) ([]int, error) {
		p := firal.NewProblem(s.labeled, s.pool)
		res, err := firal.SelectExact(ctx, p, b, o.options(s.seed))
		if err != nil {
			return nil, err
		}
		return res.Selected, nil
	})
}

// DistributedFIRAL runs Approx-FIRAL sharded over `ranks` simulated
// distributed-memory ranks (one goroutine per rank, message-passing
// collectives as in § III-C). Selections match the serial ApproxFIRAL up
// to floating-point summation order. Cancellation is detected
// collectively, so all ranks abort together.
func DistributedFIRAL(ranks int, o FIRALOptions) Selector {
	if ranks < 1 {
		ranks = 1
	}
	return SelectorFunc("Approx-FIRAL(dist)", func(ctx context.Context, s *State, b int) ([]int, error) {
		// Every rank reports its selection and error; failures on ranks
		// r>0 must surface too, or rank 0 could return a partial/garbage
		// selection with a nil error.
		selected := make([][]int, ranks)
		errs := make([]error, ranks)
		mpi.Run(ranks, func(c *mpi.Comm) {
			sh := distfiral.MakeShard(s.labeled, s.pool, ranks, c.Rank())
			sel, _, _, err := distfiral.Select(ctx, c, sh, b, o.Eta, o.relax(s.seed))
			selected[c.Rank()], errs[c.Rank()] = sel, err
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return selected[0], nil
	})
}
