// Command firal-single regenerates Fig. 5: the single-device wall-clock
// breakdown of the RELAX and ROUND solves as a function of the feature
// dimension d and the class count c, with measured times next to
// theoretical peak estimates (the paper's paired columns).
//
// Usage:
//
//	firal-single -step relax -sweep d -values 24,48,64 -c 16 -n 20000
//	firal-single -step round -sweep c -values 8,16,32,64 -d 24 -n 50000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/experiments"
)

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("firal-single: ")
	var (
		step   = flag.String("step", "relax", "relax or round")
		sweep  = flag.String("sweep", "d", "swept parameter: d or c")
		values = flag.String("values", "", "comma-separated sweep values (default: d→24,48,64; c→8,16,32)")
		dFix   = flag.Int("d", 24, "fixed d when sweeping c")
		cFix   = flag.Int("c", 12, "fixed c when sweeping d")
		n      = flag.Int("n", 20000, "pool size")
		s      = flag.Int("s", 10, "Rademacher probes (relax)")
		ncg    = flag.Int("ncg", 50, "fixed CG iterations per solve (relax)")
		seed   = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	ctx, cancel := cli.InterruptContext()
	defer cancel()

	if *values == "" {
		if *sweep == "d" {
			*values = "24,48,64"
		} else {
			*values = "8,16,32"
		}
	}
	vals, err := parseInts(*values)
	if err != nil {
		log.Fatalf("bad -values: %v", err)
	}
	fixed := *cFix
	if *sweep == "c" {
		fixed = *dFix
	}
	opts := experiments.SingleDeviceOptions{N: *n, S: *s, NCG: *ncg, Seed: *seed}

	switch *step {
	case "relax":
		rows, err := experiments.RunRelaxSweep(ctx, *sweep, vals, fixed, opts)
		if err != nil {
			log.Fatal(err)
		}
		title := fmt.Sprintf("Fig. 5 — RELAX solve, sweep over %s (n=%d, s=%d, nCG=%d)", *sweep, *n, *s, *ncg)
		experiments.PrintBreakdown(os.Stdout, title, *sweep,
			[]string{"precond", "cg", "gradient", "other"}, rows)
	case "round":
		rows, err := experiments.RunRoundSweep(ctx, *sweep, vals, fixed, opts)
		if err != nil {
			log.Fatal(err)
		}
		title := fmt.Sprintf("Fig. 5 — ROUND solve, sweep over %s (n=%d)", *sweep, *n)
		experiments.PrintBreakdown(os.Stdout, title, *sweep,
			[]string{"eig", "objective", "other"}, rows)
	default:
		log.Fatalf("unknown -step %q", *step)
	}
}
