// Command firal-bench measures the hot kernels behind the Approx-FIRAL
// per-round cost model (Tables II–III) — blocked vs reference GEMM, the
// Lemma-2 Hessian matvec, the ROUND scoring pass, a preconditioned CG
// solve, and one full Approx-FIRAL round — and writes the results as JSON
// so successive PRs can track the performance trajectory.
//
// Usage:
//
//	firal-bench                 # full run, writes BENCH_round.json
//	firal-bench -quick          # CI smoke: one short pass per benchmark
//	firal-bench -out results.json
//	firal-bench -against BENCH_round.json -tol 10   # diff vs a baseline
//
// With -against, results are compared to the baseline file after the
// run: a benchmark fails the diff when its ns/op exceeds baseline×tol
// (machines differ; keep tol generous) or its allocs/op regresses beyond
// baseline + max(8, baseline/4) — a gross-regression tripwire; the exact
// zero-alloc pins live in the AllocsPerRun tests. Any failure exits
// nonzero, which is how CI keeps the recorded trajectory from rotting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/firal"
	"repro/internal/hessian"
	"repro/internal/krylov"
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/rnd"
	"repro/internal/timing"
)

// entry is one benchmark result. Extra carries derived metrics such as
// speedup ratios.
type entry struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type report struct {
	GoVersion string    `json:"go_version"`
	GoArch    string    `json:"go_arch"`
	NumCPU    int       `json:"num_cpu"`
	Date      time.Time `json:"date"`
	Results   []entry   `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("firal-bench: ")
	testing.Init() // registers -test.benchtime, which testing.Benchmark reads
	var (
		out     = flag.String("out", "BENCH_round.json", "output JSON path")
		quick   = flag.Bool("quick", false, "single short pass per benchmark (CI smoke)")
		against = flag.String("against", "", "baseline JSON to diff results against")
		tol     = flag.Float64("tol", 6, "allowed ns/op factor over the baseline")
	)
	flag.Parse()

	benchTime := time.Second
	if *quick {
		benchTime = 10 * time.Millisecond
	}
	if err := flag.Set("test.benchtime", benchTime.String()); err != nil {
		log.Fatal(err)
	}
	run := func(name string, f func(b *testing.B)) entry {
		r := testing.Benchmark(f)
		e := entry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Printf("%-28s %14.0f ns/op %8d allocs/op\n", name, e.NsPerOp, e.AllocsPerOp)
		return e
	}

	rep := report{
		GoVersion: runtime.Version(),
		GoArch:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Date:      time.Now().UTC(),
		Results:   []entry{},
	}

	// --- GEMM: blocked vs reference at d=256 (the ≥2× gate). ---
	const gd = 256
	rng := rnd.New(1)
	ga := mat.NewDense(gd, gd)
	gb := mat.NewDense(gd, gd)
	rng.Normal(ga.Data, 0, 1)
	rng.Normal(gb.Data, 0, 1)
	gdst := mat.NewDense(gd, gd)
	// Benchmarks measure the steady state: warm each op before the timed
	// loop so quick mode (b.N may be 1) doesn't charge cold-start pool,
	// packing-scratch, and worker-spawn allocations to the measurement.
	blocked := run("gemm_blocked_d256", func(b *testing.B) {
		mat.Mul(gdst, ga, gb)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mat.Mul(gdst, ga, gb)
		}
	})
	naive := run("gemm_naive_d256", func(b *testing.B) {
		mat.RefMul(gdst, ga, gb)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mat.RefMul(gdst, ga, gb)
		}
	})
	blocked.Extra = map[string]float64{"speedup_vs_naive": naive.NsPerOp / blocked.NsPerOp}
	rep.Results = append(rep.Results, blocked, naive)

	// --- Lemma-2 Hessian matvec with a warm workspace. ---
	labeled, pool := experiments.SynthSets(20, 2000, 64, 10, 2)
	ws := mat.NewWorkspace()
	v := make([]float64, pool.Ed())
	dst := make([]float64, pool.Ed())
	w := make([]float64, pool.N())
	rnd.New(3).Normal(v, 0, 1)
	mat.Fill(w, 0.5)
	rep.Results = append(rep.Results, run("hessian_matvec_n2000_d64_c9", func(b *testing.B) {
		pool.MatVecWS(ws, dst, v, w) // warm the workspace
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.MatVecWS(ws, dst, v, w)
		}
	}))

	// --- Preconditioned CG solve (Σz x = b) with workspace. ---
	p := firal.NewProblem(labeled, pool)
	z := make([]float64, p.N())
	mat.Fill(z, 1/float64(p.N()))
	sigMV := p.SigmaMatVecWS(ws, z)
	precond, err := firal.BlockPreconditioner(p.SigmaBlocks(z))
	if err != nil {
		log.Fatal(err)
	}
	rhs := make([]float64, p.Ed())
	sol := make([]float64, p.Ed())
	rnd.New(4).Rademacher(rhs)
	cgOpt := krylov.Options{Tol: 1e-6, MaxIter: 400, Workspace: ws}
	rep.Results = append(rep.Results, run("pcg_solve_ed576", func(b *testing.B) {
		mat.Fill(sol, 0)
		krylov.PCG(context.Background(), sigMV, precond, rhs, sol, cgOpt) // warm the workspace
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mat.Fill(sol, 0)
			krylov.PCG(context.Background(), sigMV, precond, rhs, sol, cgOpt)
		}
	}))

	// --- ROUND scoring pass (the per-candidate pool rescore). ---
	scores := make([]float64, p.N())
	rep.Results = append(rep.Results, run("round_scores_n2000_d64_c9", func(b *testing.B) {
		st, serr := firal.NewRoundState(p.SigmaBlocks(z), p.Labeled.BlockDiagSum(nil),
			10, p.DefaultEta(), timing.New())
		if serr != nil {
			b.Fatal(serr)
		}
		st.Scores(p.Pool, scores) // warm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Scores(p.Pool, scores)
		}
	}))

	// --- One full Approx-FIRAL round (RELAX + ROUND). ---
	// Warmed like the kernel benches: the per-call setup is sync.Pool
	// recycled, so the steady state (what a session of repeated rounds
	// pays) is the round after the scratch pools are populated.
	sp, spool := experiments.SynthSets(20, 600, 32, 8, 5)
	sprob := firal.NewProblem(sp, spool)
	selectRound := func() error {
		_, err := firal.SelectApprox(context.Background(), sprob, 5, firal.Options{
			Relax: firal.RelaxOptions{FixedIterations: 3, Seed: 1},
		})
		return err
	}
	rep.Results = append(rep.Results, run("approx_firal_round_n600_d32", func(b *testing.B) {
		if err := selectRound(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := selectRound(); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// --- Steady-state ROUND candidate step at 4 workers. ---
	// One rescone-and-update of the n=600 round config with warm state and
	// the persistent worker pool engaged: the zero-alloc multicore
	// guarantee of the pool + in-place Cholesky work, pinned here as
	// allocs_per_op = 0 in the recorded trajectory.
	rep.Results = append(rep.Results, run("round_steady_n600_d32_w4", func(b *testing.B) {
		prevW := parallel.SetMaxWorkers(4)
		defer parallel.SetMaxWorkers(prevW)
		z := make([]float64, sprob.N())
		mat.Fill(z, 5/float64(sprob.N()))
		ph := timing.New()
		st, serr := firal.NewRoundState(sprob.SigmaBlocks(z), sprob.Labeled.BlockDiagSum(nil),
			5, sprob.DefaultEta(), ph)
		if serr != nil {
			b.Fatal(serr)
		}
		sscores := make([]float64, sprob.N())
		step := func() {
			st.Scores(sprob.Pool, sscores)
			best, bestV := 0, sscores[0]
			for i, s := range sscores {
				if s > bestV {
					best, bestV = i, s
				}
			}
			if _, err := st.Update(sprob.Pool.Row(best, nil), sprob.Pool.Probs().Row(best), ph); err != nil {
				b.Fatal(err)
			}
		}
		step() // warm scratch, factor storage, task pools
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
	}))

	// --- Million-point streaming benches over mmap'd shards. ---
	// The pool (1e6 × 64 float32 ≈ 244 MiB) lives in two shard files and
	// is consumed through the block-streaming PoolSource path: no n×d
	// float64 matrix ever exists, only one 4096-row block of decode
	// scratch plus the O(n) score/probability vectors. Binary problem
	// (one Fisher block) to keep the absolute runtime CI-friendly; the
	// per-pass cost model is unchanged (two GEMM + row-dot sweeps per
	// class per block). The shard files are packed once and shared by the
	// ROUND-rescore and streamed-RELAX benchmarks.
	setup, err := buildStreamPool()
	if err != nil {
		log.Fatal(err)
	}
	defer setup.cleanup()
	rep.Results = append(rep.Results, streamBench(run, setup))
	if e, err := relaxStreamBench(setup); err != nil {
		log.Fatal(err)
	} else {
		rep.Results = append(rep.Results, e)
	}

	// --- Incremental delta round vs full-rescore round at n=1e5. ---
	if e, err := deltaRoundBench(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("%-28s %14.0f ns/op %8d allocs/op  (%.1fx vs full rescore)\n",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.Extra["cost_ratio"])
		rep.Results = append(rep.Results, e)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d benchmarks)", *out, len(rep.Results))

	if *against != "" {
		if err := diffAgainst(*against, rep, *tol); err != nil {
			log.Fatal(err)
		}
		log.Printf("within tolerance of baseline %s", *against)
	}
}

// streamSetup is the shared million-row shard-pool fixture: two mmap'd
// float32 shard files (exercising the cross-file boundary), the resident
// n×1 reduced probability column of a binary problem, and a small
// resident labeled set for Ho.
type streamSetup struct {
	dir     string
	src     *dataset.ShardSource
	probs   *mat.Dense
	labeled *hessian.Set
}

const (
	streamN = 1_000_000
	streamD = 64
)

// buildStreamPool streams synthetic rows into the two shards block by
// block — the full matrix is never resident. Probabilities (binary
// problem, one reduced column) stay in memory: n×1 float64, the same O(n)
// class as z and scores.
func buildStreamPool() (*streamSetup, error) {
	const (
		n = streamN
		d = streamD
	)
	dir, err := os.MkdirTemp("", "firal-stream-bench")
	if err != nil {
		return nil, err
	}
	rng := rnd.New(11)
	probs := mat.NewDense(n, 1)
	for i := 0; i < n; i++ {
		probs.Set(i, 0, 0.1+0.8*rng.Float64())
	}
	paths := []string{filepath.Join(dir, "pool-0.shard"), filepath.Join(dir, "pool-1.shard")}
	splits := [][2]int{{0, 600_000}, {600_000, n}}
	block := mat.NewDense(4096, d)
	for s, span := range splits {
		w, err := dataset.CreateShard(paths[s], d)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		for lo := span[0]; lo < span[1]; lo += block.Rows {
			hi := min(lo+block.Rows, span[1])
			b := block.RowSlice(0, hi-lo)
			rng.Normal(b.Data[:(hi-lo)*d], 0, 1)
			if err := w.AppendBlock(b); err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
		}
		if err := w.Close(); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
	}
	src, err := dataset.OpenShards(paths...)
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	labeled, _ := experiments.SynthSets(20, 1, d, 1, 7)
	return &streamSetup{dir: dir, src: src, probs: probs, labeled: labeled}, nil
}

func (s *streamSetup) cleanup() {
	s.src.Close()
	os.RemoveAll(s.dir)
}

// streamBench measures one full ROUND rescoring pass over the 1,000,000×64
// shard pool — the past-resident-RAM configuration of the PoolSource
// work. Σ⋄ blocks come from the same blocked Gram path, then
// RoundState.Scores is timed over the hessian.Stream.
func streamBench(run func(string, func(b *testing.B)) entry, setup *streamSetup) entry {
	const n, d = streamN, streamD
	pool := hessian.NewStream(setup.src, setup.probs, 0)
	ws := mat.NewWorkspace()
	z := make([]float64, n)
	mat.Fill(z, 10/float64(n))
	sig := pool.BlockDiagSumInto(ws, nil, z)
	ho := setup.labeled.BlockDiagSumInto(ws, nil, nil)
	for k := range sig {
		sig[k].AddScaled(1, ho[k])
	}
	st, err := firal.NewRoundState(sig, ho, 10, 8*math.Sqrt(float64(d)), timing.New())
	if err != nil {
		log.Fatal(err)
	}
	scores := make([]float64, n)
	return run("pool_stream_n1e6_d64", func(b *testing.B) {
		st.Scores(pool, scores) // warm (maps pages, sizes block scratch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Scores(pool, scores)
		}
	})
}

// relaxStreamBench measures one streamed RELAX mirror-descent iteration
// (the paper's s = 10 probes, CG capped for a deterministic sweep budget)
// over the same million-row shard pool — the configuration the block-CG
// and prefetch work targets. PR 5's block CG minimized the decode COUNT
// (one pool sweep per CG iteration instead of one per probe column); the
// prefetch layer hides what remains by decoding block k+1 while the
// kernels chew block k, so the headline entry runs with prefetch ON —
// the production default — with the synchronous path timed in an
// interleaved A/B (best of three each) into Extra["prefetch_off_ns"]
// for the overlap ratio. Overlap needs a spare core: at GOMAXPROCS = 1
// the background read only runs when the consumer blocks, so
// prefetch_speedup ≈ 1 there (read it next to the report's num_cpu).
//
// The run hard-fails unless the two paths are equivalent in every way
// that matters: bit-identical RELAX weights (selection_match — read-
// ahead must change decode timing, never arithmetic) and identical
// decode traffic measured by a dataset.CountingSource sitting BELOW the
// prefetcher (decode_sweeps — the forward-sweep prediction must never
// read a window the solver doesn't then consume). Also recorded: the
// total CG iteration count and the per-column path's
// cg_iterations + (4·probes+1) sweep estimate.
func relaxStreamBench(setup *streamSetup) (entry, error) {
	const probes = 10
	counting := dataset.NewCountingSource(setup.src)
	opts := firal.RelaxOptions{
		FixedIterations: 1, Probes: probes, CGTol: 0.1, CGMaxIter: 8, Seed: 13,
	}
	ctx := context.Background()

	// Both problem stacks sit on the same CountingSource, so every sample
	// — synchronous or prefetched — counts its decode traffic for free;
	// the prefetched stack adds WithPrefetch, the production composition
	// hook, ABOVE the counter so asynchronous reads land on the counted
	// ReadRows exactly like synchronous ones.
	pOff := firal.NewProblem(setup.labeled, hessian.NewStream(counting, setup.probs, 0))
	pOn := firal.NewProblem(setup.labeled,
		hessian.NewStream(dataset.WithPrefetch(ctx, counting, 0), setup.probs, 0))
	sample := func(p *firal.Problem) (*firal.RelaxResult, float64, float64, error) {
		counting.Reset()
		t0 := time.Now()
		r, err := firal.RelaxFast(ctx, p, 10, opts)
		return r, float64(time.Since(t0).Nanoseconds()), counting.Sweeps(), err
	}

	// The paths alternate (A/B) and each keeps its best of three, so a
	// machine-load swing hits both paths instead of whichever ran second
	// and the cold first pass (page mapping, scratch-pool fill) never
	// decides either figure. The first prefetched sample is checked
	// against the synchronous result — weights bit for bit, sweeps
	// exactly equal (later samples are identical by determinism: same
	// seed, same arithmetic).
	var off, on *firal.RelaxResult
	offNs, onNs, offSweeps := math.Inf(1), math.Inf(1), 0.0
	for round := 0; round < 3; round++ {
		r, ns, sweeps, err := sample(pOff)
		if err != nil {
			return entry{}, err
		}
		if round == 0 {
			off, offSweeps = r, sweeps
		}
		offNs = math.Min(offNs, ns)

		r, ns, sweeps, err = sample(pOn)
		if err != nil {
			return entry{}, err
		}
		if round == 0 {
			on = r
		}
		onNs = math.Min(onNs, ns)
		if round > 0 {
			continue
		}
		for i := range off.Z {
			if math.Float64bits(on.Z[i]) != math.Float64bits(off.Z[i]) {
				return entry{}, fmt.Errorf("prefetched RELAX diverges from the synchronous path: z[%d] = %x vs %x",
					i, math.Float64bits(on.Z[i]), math.Float64bits(off.Z[i]))
			}
		}
		if sweeps != offSweeps {
			return entry{}, fmt.Errorf("prefetch changed the decode traffic: %.2f sweeps vs %.2f synchronous",
				sweeps, offSweeps)
		}
	}

	// The headline entry is the best prefetched pass: at 1 s benchtime a
	// ~9 s op gets a single testing.Benchmark iteration anyway, and the
	// min-of-3 from the A/B loop is the more noise-robust figure — the
	// off/on minima are directly comparable by construction.
	e := entry{Name: "relax_stream_n1e6_d64", NsPerOp: onNs}
	fmt.Printf("%-28s %14.0f ns/op %8d allocs/op\n", e.Name, e.NsPerOp, e.AllocsPerOp)
	e.Extra = map[string]float64{
		"decode_sweeps":            offSweeps,
		"cg_iterations":            float64(on.CGIterations),
		"per_column_sweeps_legacy": float64(on.CGIterations + (4*probes+1)*on.Iterations),
		"prefetch_off_ns":          offNs,
		"prefetch_speedup":         offNs / onNs,
		"selection_match":          1,
	}
	fmt.Printf("%-28s prefetch off %12.0f ns/op (%.2fx overlap gain, %.0f sweeps both paths)\n",
		"", offNs, offNs/onNs, offSweeps)
	return e, nil
}

// deltaRoundBench measures round t+1 two ways over the same grown pool
// (100,000 resident rows plus a 1% append, d = 64, binary problem): the
// from-scratch path — full RELAX over the grown pool, then ROUND — and
// the incremental path — Incremental.AppendRows sweeps only the 1,000
// appended rows, then a Refine == 0 Select starts ROUND directly from
// the maintained rank-1-current Cholesky factors. Each path is timed
// wall-clock once (the delta path mutates the session state, so there is
// no b.N loop; both paths share the worker pool, so the ratio is fair)
// and the entry hard-fails unless the incremental round selects exactly
// what the from-scratch ROUND selects at the same weights — the
// maintained factors must be the rebuilt ones, argmax for argmax.
func deltaRoundBench() (entry, error) {
	const (
		nOld   = 100_000
		nDelta = 1_000 // the 1% append
		nNew   = nOld + nDelta
		d      = 64
		b      = 5
	)
	labeled, full := experiments.SynthSets(20, nNew, d, 2, 17)
	base := hessian.NewSet(full.X.RowSlice(0, nOld), full.H.RowSlice(0, nOld))
	pBase := firal.NewProblem(labeled, base)
	relaxOpts := firal.RelaxOptions{FixedIterations: 12, Probes: 10, CGTol: 0.1, CGMaxIter: 8, Seed: 29}
	ctx := context.Background()

	// Round t: the session's last full selection over the base pool seeds
	// the incremental state (and warms the scratch pools both timed paths
	// draw from).
	relax, err := firal.RelaxFast(ctx, pBase, b, relaxOpts)
	if err != nil {
		return entry{}, err
	}
	inc, err := firal.NewIncremental(pBase, relax.Z, b, 0)
	if err != nil {
		return entry{}, err
	}
	pFull := firal.NewProblem(labeled, full)

	// From-scratch round t+1 over the grown pool.
	t0 := time.Now()
	relaxFull, err := firal.RelaxFast(ctx, pFull, b, relaxOpts)
	if err != nil {
		return entry{}, err
	}
	if _, err := firal.RoundFast(pFull, relaxFull.Z, b, firal.RoundOptions{Eta: inc.Eta()}); err != nil {
		return entry{}, err
	}
	fullNs := float64(time.Since(t0).Nanoseconds())

	// The from-scratch ROUND at the maintained (reprojected) weights — the
	// selection the incremental path must reproduce exactly.
	scratch, err := firal.RoundFast(pFull, firal.ReprojectSimplex(relax.Z, nNew), b,
		firal.RoundOptions{Eta: inc.Eta()})
	if err != nil {
		return entry{}, err
	}

	// Incremental round t+1: absorb the delta, select from the factors.
	t0 = time.Now()
	if err := inc.AppendRows(full); err != nil {
		return entry{}, err
	}
	incRes, err := inc.Select(ctx, firal.SelectOptions{})
	if err != nil {
		return entry{}, err
	}
	deltaNs := float64(time.Since(t0).Nanoseconds())

	match := len(incRes.Selected) == len(scratch.Selected)
	for i := 0; match && i < len(incRes.Selected); i++ {
		match = incRes.Selected[i] == scratch.Selected[i]
	}
	if !match {
		return entry{}, fmt.Errorf("delta round selections diverge from the from-scratch path: %v vs %v",
			incRes.Selected, scratch.Selected)
	}
	return entry{
		Name:    "delta_round_n1e5_d64",
		NsPerOp: deltaNs,
		Extra: map[string]float64{
			"full_round_ns":   fullNs,
			"cost_ratio":      fullNs / deltaNs,
			"selection_match": 1,
		},
	}, nil
}

// diffAgainst compares the fresh results to a recorded baseline. Timing
// gets a multiplicative tolerance (CI machines differ from the recording
// machine); allocation counts are near-exact, since they are what the
// zero-alloc work pins.
func diffAgainst(path string, rep report, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	byName := make(map[string]entry, len(base.Results))
	for _, e := range base.Results {
		byName[e.Name] = e
	}
	var failures []string
	for _, e := range rep.Results {
		b, ok := byName[e.Name]
		if !ok {
			continue // new benchmark, no baseline yet
		}
		if maxNs := b.NsPerOp * tol; e.NsPerOp > maxNs {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f ns/op exceeds baseline %.0f × tol %g", e.Name, e.NsPerOp, b.NsPerOp, tol))
		}
		// Allocation counts catch gross regressions (a reintroduced
		// per-iteration or O(n) allocation) with a small absolute slack:
		// quick mode runs few iterations, so a GC purging the sync.Pools
		// mid-measurement can charge a handful of one-off refills to a
		// single op. The exact zero-alloc guarantees are enforced by the
		// warmed AllocsPerRun pins (CI alloc-multicore job), not here.
		allowedAllocs := b.AllocsPerOp + max(8, b.AllocsPerOp/4)
		if e.AllocsPerOp > allowedAllocs {
			failures = append(failures, fmt.Sprintf(
				"%s: %d allocs/op exceeds baseline %d (allowed %d)", e.Name, e.AllocsPerOp, b.AllocsPerOp, allowedAllocs))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression vs %s:\n  %s", path, strings.Join(failures, "\n  "))
	}
	return nil
}
