// Command firal-bench measures the hot kernels behind the Approx-FIRAL
// per-round cost model (Tables II–III) — blocked vs reference GEMM, the
// Lemma-2 Hessian matvec, the ROUND scoring pass, a preconditioned CG
// solve, and one full Approx-FIRAL round — and writes the results as JSON
// so successive PRs can track the performance trajectory.
//
// Usage:
//
//	firal-bench                 # full run, writes BENCH_round.json
//	firal-bench -quick          # CI smoke: one short pass per benchmark
//	firal-bench -out results.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/firal"
	"repro/internal/krylov"
	"repro/internal/mat"
	"repro/internal/rnd"
	"repro/internal/timing"
)

// entry is one benchmark result. Extra carries derived metrics such as
// speedup ratios.
type entry struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type report struct {
	GoVersion string    `json:"go_version"`
	GoArch    string    `json:"go_arch"`
	NumCPU    int       `json:"num_cpu"`
	Date      time.Time `json:"date"`
	Results   []entry   `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("firal-bench: ")
	testing.Init() // registers -test.benchtime, which testing.Benchmark reads
	var (
		out   = flag.String("out", "BENCH_round.json", "output JSON path")
		quick = flag.Bool("quick", false, "single short pass per benchmark (CI smoke)")
	)
	flag.Parse()

	benchTime := time.Second
	if *quick {
		benchTime = 10 * time.Millisecond
	}
	if err := flag.Set("test.benchtime", benchTime.String()); err != nil {
		log.Fatal(err)
	}
	run := func(name string, f func(b *testing.B)) entry {
		r := testing.Benchmark(f)
		e := entry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Printf("%-28s %14.0f ns/op %8d allocs/op\n", name, e.NsPerOp, e.AllocsPerOp)
		return e
	}

	rep := report{
		GoVersion: runtime.Version(),
		GoArch:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Date:      time.Now().UTC(),
		Results:   []entry{},
	}

	// --- GEMM: blocked vs reference at d=256 (the ≥2× gate). ---
	const gd = 256
	rng := rnd.New(1)
	ga := mat.NewDense(gd, gd)
	gb := mat.NewDense(gd, gd)
	rng.Normal(ga.Data, 0, 1)
	rng.Normal(gb.Data, 0, 1)
	gdst := mat.NewDense(gd, gd)
	blocked := run("gemm_blocked_d256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mat.Mul(gdst, ga, gb)
		}
	})
	naive := run("gemm_naive_d256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mat.RefMul(gdst, ga, gb)
		}
	})
	blocked.Extra = map[string]float64{"speedup_vs_naive": naive.NsPerOp / blocked.NsPerOp}
	rep.Results = append(rep.Results, blocked, naive)

	// --- Lemma-2 Hessian matvec with a warm workspace. ---
	labeled, pool := experiments.SynthSets(20, 2000, 64, 10, 2)
	ws := mat.NewWorkspace()
	v := make([]float64, pool.Ed())
	dst := make([]float64, pool.Ed())
	w := make([]float64, pool.N())
	rnd.New(3).Normal(v, 0, 1)
	mat.Fill(w, 0.5)
	rep.Results = append(rep.Results, run("hessian_matvec_n2000_d64_c9", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool.MatVecWS(ws, dst, v, w)
		}
	}))

	// --- Preconditioned CG solve (Σz x = b) with workspace. ---
	p := firal.NewProblem(labeled, pool)
	z := make([]float64, p.N())
	mat.Fill(z, 1/float64(p.N()))
	sigMV := p.SigmaMatVecWS(ws, z)
	precond, err := firal.BlockPreconditioner(p.SigmaBlocks(z))
	if err != nil {
		log.Fatal(err)
	}
	rhs := make([]float64, p.Ed())
	sol := make([]float64, p.Ed())
	rnd.New(4).Rademacher(rhs)
	cgOpt := krylov.Options{Tol: 1e-6, MaxIter: 400, Workspace: ws}
	rep.Results = append(rep.Results, run("pcg_solve_ed576", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mat.Fill(sol, 0)
			krylov.PCG(context.Background(), sigMV, precond, rhs, sol, cgOpt)
		}
	}))

	// --- ROUND scoring pass (the per-candidate pool rescore). ---
	scores := make([]float64, p.N())
	rep.Results = append(rep.Results, run("round_scores_n2000_d64_c9", func(b *testing.B) {
		st, serr := firal.NewRoundState(p.SigmaBlocks(z), p.Labeled.BlockDiagSum(nil),
			10, p.DefaultEta(), timing.New())
		if serr != nil {
			b.Fatal(serr)
		}
		st.Scores(p.Pool, scores) // warm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Scores(p.Pool, scores)
		}
	}))

	// --- One full Approx-FIRAL round (RELAX + ROUND). ---
	sp, spool := experiments.SynthSets(20, 600, 32, 8, 5)
	sprob := firal.NewProblem(sp, spool)
	rep.Results = append(rep.Results, run("approx_firal_round_n600_d32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := firal.SelectApprox(context.Background(), sprob, 5, firal.Options{
				Relax: firal.RelaxOptions{FixedIterations: 3, Seed: 1},
			}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d benchmarks)", *out, len(rep.Results))
}
