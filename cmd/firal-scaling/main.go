// Command firal-scaling regenerates Figs. 6 and 7: strong and weak
// scaling of the distributed RELAX and ROUND steps over the in-process
// MPI runtime, at the paper's rank counts {1, 2, 3, 6, 12}, with measured
// per-phase times next to theoretical estimates.
//
// Note: ranks are simulated as goroutines, so measured wall-clock speedup
// saturates at the host's core count; the theoretical series shows the
// ideal multi-device behaviour (see EXPERIMENTS.md).
//
// Usage:
//
//	firal-scaling -step relax -mode strong -n 24000 -d 64 -c 10
//	firal-scaling -step round -mode weak -nperrank 4000 -d 48 -c 32
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("firal-scaling: ")
	var (
		step     = flag.String("step", "relax", "relax or round")
		mode     = flag.String("mode", "strong", "strong or weak")
		ranksStr = flag.String("ranks", "1,2,3,6,12", "rank counts to sweep")
		n        = flag.Int("n", 24000, "global pool size (strong)")
		nPerRank = flag.Int("nperrank", 2000, "pool points per rank (weak)")
		d        = flag.Int("d", 48, "feature dimension")
		c        = flag.Int("c", 10, "class count")
		s        = flag.Int("s", 10, "Rademacher probes (relax)")
		ncg      = flag.Int("ncg", 20, "fixed CG iterations per solve (relax)")
		b        = flag.Int("b", 3, "points selected when timing the round step")
		seed     = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	ctx, cancel := cli.InterruptContext()
	defer cancel()

	var ranks []int
	for _, p := range strings.Split(*ranksStr, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			log.Fatalf("bad -ranks: %v", err)
		}
		ranks = append(ranks, v)
	}

	opts := experiments.ScalingOptions{
		Ranks: ranks, Strong: *mode == "strong",
		N: *n, NPerRank: *nPerRank, D: *d, C: *c,
		S: *s, NCG: *ncg, B: *b, Seed: *seed,
	}

	switch *step {
	case "relax":
		points, err := experiments.RunRelaxScaling(ctx, opts)
		if err != nil {
			log.Fatal(err)
		}
		title := fmt.Sprintf("Fig. 6 — RELAX %s scaling (d=%d c=%d)", *mode, *d, *c)
		experiments.PrintScaling(os.Stdout, title,
			[]string{"precond", "cg", "gradient", "comm"}, points)
	case "round":
		points, err := experiments.RunRoundScaling(ctx, opts)
		if err != nil {
			log.Fatal(err)
		}
		title := fmt.Sprintf("Fig. 7 — ROUND %s scaling (d=%d c=%d), per selected point", *mode, *d, *c)
		experiments.PrintScaling(os.Stdout, title,
			[]string{"eig", "objective", "comm", "other"}, points)
	default:
		log.Fatalf("unknown -step %q", *step)
	}
}
