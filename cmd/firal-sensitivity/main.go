// Command firal-sensitivity regenerates Fig. 4: the RELAX objective
// trajectory under different Hutchinson probe counts s and CG tolerances,
// against the exact RELAX solver, on CIFAR-10-like and ImageNet-50-like
// problems.
//
// Usage:
//
//	firal-sensitivity -scale 0.1 -iters 40
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("firal-sensitivity: ")
	var (
		name  = flag.String("dataset", "", "single dataset (default: CIFAR-10 and ImageNet-50, as in Fig. 4)")
		scale = flag.Float64("scale", 0.1, "pool size scale factor")
		seed  = flag.Int64("seed", 1, "seed")
		iters = flag.Int("iters", 40, "mirror-descent iterations to trace")
		exact = flag.Bool("exact", true, "include the exact RELAX trajectory when feasible")
	)
	flag.Parse()

	ctx, cancel := cli.InterruptContext()
	defer cancel()

	var cfgs []dataset.Config
	if *name != "" {
		for _, c := range dataset.TableV() {
			if strings.EqualFold(c.Name, *name) {
				cfgs = append(cfgs, c)
			}
		}
		if len(cfgs) == 0 {
			log.Fatalf("unknown dataset %q", *name)
		}
	} else {
		cfgs = []dataset.Config{dataset.CIFAR10(), dataset.ImageNet50()}
	}

	for _, cfg := range cfgs {
		curves, err := experiments.RunSensitivity(ctx, cfg, experiments.SensitivityOptions{
			Scale: *scale, Seed: *seed, Iterations: *iters, IncludeExact: *exact,
		})
		if err != nil {
			log.Fatalf("%s: %v", cfg.Name, err)
		}
		experiments.PrintSensitivity(os.Stdout, cfg.Name, curves)
		fmt.Println()
	}
}
