// Command firal-vet machine-enforces the repo's standing contracts
// (ARCHITECTURE.md § Contract enforcement) with six custom go/analysis
// analyzers: hotpath, pooledfork, limitpair, sentinelerr, lockorder,
// ctxpoll.
//
// It speaks the `go vet -vettool=` protocol (the unitchecker driver the
// toolchain's own vet binary uses), and for convenience also runs
// standalone: invoked with package patterns instead of a vet .cfg file,
// it re-executes itself through `go vet`, which owns package loading,
// caching, and dependency export data:
//
//	go build -o bin/firal-vet ./cmd/firal-vet
//	go vet -vettool=$(pwd)/bin/firal-vet ./...   # vet-tool form
//	bin/firal-vet ./...                          # standalone form (same thing)
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis"
)

func main() {
	if patterns := packagePatterns(os.Args[1:]); patterns != nil {
		standalone(patterns)
		return
	}
	unitchecker.Main(analysis.Analyzers()...)
}

// packagePatterns returns the package patterns of a standalone
// invocation (`firal-vet ./...`), or nil when the arguments are the
// unitchecker protocol (-V=full handshake, -flag settings, *.cfg unit
// files) and unitchecker.Main should handle them.
func packagePatterns(args []string) []string {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: firal-vet [packages]  (or: go vet -vettool=firal-vet [packages])")
		os.Exit(2)
	}
	var patterns []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return nil
		}
		patterns = append(patterns, a)
	}
	return patterns
}

// standalone re-executes through `go vet -vettool=self`, so both forms
// analyze identically — same driver, same facts, same diagnostics.
func standalone(patterns []string) {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "firal-vet: cannot locate own executable: %v\n", err)
		os.Exit(1)
	}
	args := append([]string{"vet", "-vettool=" + self}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "firal-vet: exec go vet: %v\n", err)
		os.Exit(1)
	}
}
