// Command firal-accuracy regenerates the accuracy experiments of the
// paper: Fig. 2 (MNIST, CIFAR-10, imb-CIFAR-10, ImageNet-50,
// imb-ImageNet-50), Fig. 3 (Caltech-101, ImageNet-1k) and the Table V
// dataset summary.
//
// Usage:
//
//	firal-accuracy -set small -scale 0.1 -trials 3
//	firal-accuracy -dataset CIFAR-10 -scale 0.2
//	firal-accuracy -table5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	pub "repro"
	"repro/internal/cli"
	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("firal-accuracy: ")
	var (
		set      = flag.String("set", "small", "dataset group: small (Fig. 2), large (Fig. 3), all")
		name     = flag.String("dataset", "", "run a single named dataset (overrides -set)")
		scale    = flag.Float64("scale", 0.1, "pool/eval size scale factor vs Table V")
		trials   = flag.Int("trials", 3, "trials for Random/K-Means (paper: 10)")
		seed     = flag.Int64("seed", 1, "master seed")
		table5   = flag.Bool("table5", false, "print the Table V dataset summary and exit")
		selector = flag.String("selectors", "", "comma-separated selector subset (default: paper's five)")
		probes   = flag.Int("probes", 10, "Rademacher probes s for Approx-FIRAL")
		cgtol    = flag.Float64("cgtol", 0.1, "CG tolerance for Approx-FIRAL")
		relaxIt  = flag.Int("relaxiters", 0, "cap on mirror-descent iterations (0 = paper default 100)")
		// Dimension overrides for host-sized reductions of paper-scale
		// configs (0 = keep the Table V value). EXPERIMENTS.md records the
		// reductions used.
		dOver = flag.Int("d", 0, "override feature dimension")
		cOver = flag.Int("c", 0, "override class count")
		bOver = flag.Int("budget", 0, "override per-round budget")
		rOver = flag.Int("rounds", 0, "override round count")
	)
	flag.Parse()

	ctx, cancel := cli.InterruptContext()
	defer cancel()

	if *table5 {
		printTableV()
		return
	}

	var cfgs []dataset.Config
	switch {
	case *name != "":
		found := false
		for _, c := range dataset.TableV() {
			if strings.EqualFold(c.Name, *name) {
				cfgs = append(cfgs, c)
				found = true
			}
		}
		if !found {
			log.Fatalf("unknown dataset %q (see -table5 for names)", *name)
		}
	case *set == "small":
		cfgs = []dataset.Config{dataset.MNIST(), dataset.CIFAR10(), dataset.ImbCIFAR10(),
			dataset.ImageNet50(), dataset.ImbImageNet50()}
	case *set == "large":
		cfgs = []dataset.Config{dataset.Caltech101(), dataset.ImageNet1k()}
	case *set == "all":
		cfgs = dataset.TableV()
	default:
		log.Fatalf("unknown -set %q", *set)
	}

	opts := experiments.AccuracyOptions{
		Scale:  *scale,
		Trials: *trials,
		Seed:   *seed,
		FIRAL:  pub.FIRALOptions{Probes: *probes, CGTol: *cgtol, MaxRelaxIterations: *relaxIt},
	}
	if *selector != "" {
		opts.Selectors = strings.Split(*selector, ",")
	}

	for i := range cfgs {
		if *dOver > 0 {
			cfgs[i].Dim = *dOver
			cfgs[i].Name += " (reduced)"
		}
		if *cOver > 0 {
			cfgs[i].Classes = *cOver
		}
		if *bOver > 0 {
			cfgs[i].Budget = *bOver
		}
		if *rOver > 0 {
			cfgs[i].Rounds = *rOver
		}
	}

	for _, cfg := range cfgs {
		curves, err := experiments.RunAccuracy(ctx, cfg, opts)
		if err != nil {
			log.Fatalf("%s: %v", cfg.Name, err)
		}
		experiments.PrintAccuracy(os.Stdout, curves)
		fmt.Println()
	}
}

func printTableV() {
	fmt.Println("# Table V — dataset summary")
	headers := []string{"name", "type", "#classes", "dim", "|Xo|", "|Xu|", "#rounds", "budget/round", "#eval"}
	var rows [][]string
	for _, c := range dataset.TableV() {
		typ := "balanced"
		if c.ImbalanceRatio > 1 {
			typ = fmt.Sprintf("imbalanced (%g:1)", c.ImbalanceRatio)
		}
		rows = append(rows, []string{
			c.Name, typ,
			fmt.Sprintf("%d", c.Classes),
			fmt.Sprintf("%d", c.Dim),
			fmt.Sprintf("%d", c.InitPerClass*c.Classes),
			fmt.Sprintf("%d", c.PoolSize),
			fmt.Sprintf("%d", c.Rounds),
			fmt.Sprintf("%d", c.Budget),
			fmt.Sprintf("%d", c.EvalSize),
		})
	}
	experiments.PrintTable(os.Stdout, headers, rows)
}
