// Command firald serves FIRAL selection as a long-lived HTTP/JSON
// service: clients register unlabeled pools (shard paths or inline CSV),
// upload labels as the active-learning dialogue progresses, and kick off
// asynchronous train+select rounds that are admission-controlled,
// checkpointed, and resumable across restarts.
//
// Usage:
//
//	firald -data /var/lib/firal [-addr :8080] [-concurrency 2] [-queue 8]
//
// SIGINT/SIGTERM drain gracefully: in-flight HTTP requests get
// -drain-timeout to finish, running rounds are interrupted at their last
// checkpoint, and the next start resumes them. See ARCHITECTURE.md
// § Service layer and examples/service for a walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port; the bound address is printed)")
	data := flag.String("data", "", "data directory for session state and checkpoints (required)")
	concurrency := flag.Int("concurrency", 2, "rounds allowed to run at once")
	queue := flag.Int("queue", 8, "rounds allowed to wait beyond the running ones before 429")
	checkpointEvery := flag.Int("checkpoint-every", 1, "checkpoint RELAX state every k mirror-descent iterations")
	block := flag.Int("block", 0, "streaming row-block size (0 = library default)")
	maxResident := flag.Int64("max-resident", 1<<30, "byte cap on resident-pool materialization (Exact-FIRAL, K-Means)")
	ranks := flag.Int("ranks", 0, "in-process ranks per Dist-FIRAL round (0 = Dist-FIRAL not servable)")
	drain := flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight HTTP requests on shutdown")
	flag.Parse()
	if *data == "" {
		return errors.New("firald: -data is required (session state and round checkpoints live there)")
	}

	srv, err := server.New(server.Config{
		DataDir:          *data,
		Concurrency:      *concurrency,
		QueueDepth:       *queue,
		CheckpointEvery:  *checkpointEvery,
		BlockRows:        *block,
		MaxResidentBytes: *maxResident,
		Ranks:            *ranks,
		Logf:             log.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	// Print the actual address so -addr :0 callers (tests, scripts) can
	// find the port.
	log.Printf("firald listening on %s (data %s, concurrency %d, queue %d)",
		ln.Addr(), *data, *concurrency, *queue)
	fmt.Printf("listening %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	log.Printf("firald draining (%s grace)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("firald: http shutdown: %v", err)
	}
	// Interrupt running rounds; their checkpoints stay for the next start.
	if err := srv.Close(); err != nil {
		return err
	}
	log.Printf("firald stopped; interrupted rounds resume on next start")
	return nil
}
