package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/dataset"
)

// buildFirald compiles the daemon once per test binary.
func buildFirald(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "firald")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startFirald launches the daemon on an ephemeral port and returns its
// base URL plus the process handle.
func startFirald(t *testing.T, bin, dataDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data", dataDir, "-checkpoint-every", "1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "listening "); ok {
			go func() { // drain any further stdout so the child never blocks
				for sc.Scan() {
				}
			}()
			return cmd, "http://" + addr
		}
	}
	cmd.Process.Kill()
	t.Fatalf("firald never printed its address (scanner err: %v)", sc.Err())
	return nil, ""
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

type roundStatus struct {
	Status   string `json:"status"`
	Error    string `json:"error"`
	Selected []int  `json:"selected"`
}

// waitDone polls a round until done/failed, tolerating connection errors
// while the daemon restarts.
func waitDone(t *testing.T, base, id string, timeout time.Duration) roundStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/sessions/" + id + "/rounds/1")
		if err == nil {
			var rs roundStatus
			json.NewDecoder(resp.Body).Decode(&rs)
			resp.Body.Close()
			switch rs.Status {
			case "done", "failed":
				return rs
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("round not done after %v", timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestKillMidRoundResume is the end-to-end crash test: SIGKILL the daemon
// while a round is mid-RELAX, restart it over the same data directory,
// and require the resumed round to select exactly what an uninterrupted
// daemon selects from the same inputs.
func TestKillMidRoundResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := buildFirald(t)

	// Shared pool shard + labeled seed set.
	poolDir := t.TempDir()
	ds := dataset.Generate(dataset.Config{
		Classes: 3, Dim: 8, PoolSize: 500, EvalSize: 3, InitPerClass: 3, Rounds: 1, Budget: 1,
	}, 61)
	shard := filepath.Join(poolDir, "pool.shard")
	w, err := dataset.CreateShard(shard, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBlock(ds.PoolX); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	labX := make([][]float64, ds.LabeledX.Rows)
	for i := range labX {
		labX[i] = append([]float64(nil), ds.LabeledX.Row(i)...)
	}
	create := map[string]any{
		"shards":            []string{shard},
		"labeled":           map[string]any{"x": labX, "y": ds.LabeledY},
		"seed":              99,
		"selector":          "Approx-FIRAL",
		"probes":            4,
		"fixed_relax_iters": 25,
	}
	newSession := func(base string) string {
		var sv struct {
			ID string `json:"id"`
		}
		if code := postJSON(t, base+"/v1/sessions", create, &sv); code != http.StatusCreated {
			t.Fatalf("create: status %d", code)
		}
		if code := postJSON(t, base+"/v1/sessions/"+sv.ID+"/rounds", map[string]int{"budget": 6}, nil); code != http.StatusAccepted {
			t.Fatalf("kick: status %d", code)
		}
		return sv.ID
	}

	// Reference run: uninterrupted daemon, fresh data dir.
	refCmd, refBase := startFirald(t, bin, t.TempDir())
	defer refCmd.Process.Kill()
	refID := newSession(refBase)
	ref := waitDone(t, refBase, refID, 60*time.Second)
	if ref.Status != "done" {
		t.Fatalf("reference round: %s %s", ref.Status, ref.Error)
	}
	refCmd.Process.Kill()
	refCmd.Wait()

	// Victim run: SIGKILL as soon as the first checkpoint lands on disk.
	dataDir := t.TempDir()
	cmd, base := startFirald(t, bin, dataDir)
	id := newSession(base)
	ckpt := filepath.Join(dataDir, id, "round.ckpt")
	for deadline := time.Now().Add(60 * time.Second); ; {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("no checkpoint appeared before the kill window closed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// The round may have finished in the instants before the kill; only a
	// genuinely interrupted solve exercises resume.
	var sess struct {
		Rounds []roundStatus `json:"rounds"`
	}
	raw, err := os.ReadFile(filepath.Join(dataDir, id, "session.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &sess); err != nil {
		t.Fatal(err)
	}
	if len(sess.Rounds) == 1 && sess.Rounds[0].Status == "done" {
		t.Skip("round completed before SIGKILL landed; nothing to resume")
	}

	// Restart over the same data dir: recovery re-enqueues the round and
	// resumes RELAX from the checkpoint without any client action.
	cmd2, base2 := startFirald(t, bin, dataDir)
	defer cmd2.Process.Kill()
	resumed := waitDone(t, base2, id, 120*time.Second)
	if resumed.Status != "done" {
		t.Fatalf("resumed round: %s %s", resumed.Status, resumed.Error)
	}
	if fmt.Sprint(resumed.Selected) != fmt.Sprint(ref.Selected) {
		t.Fatalf("kill-resume selection diverged:\nresumed   %v\nreference %v",
			resumed.Selected, ref.Selected)
	}
}
