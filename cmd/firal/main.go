// Command firal runs batch active learning on user-supplied data: point
// features and (oracle) labels are read from CSV files, a selection
// strategy is applied for a number of rounds, and the selected indices
// plus per-round accuracies are reported. This is the downstream-user
// entry point; the firal-* commands reproduce the paper's experiments.
//
// Strategies are resolved through the package's selector registry
// (firal.New); `firal -select help` lists everything registered.
// Per-round results stream as each round completes, and Ctrl-C cancels
// the run mid-selection via context cancellation — already-completed
// rounds are still reported.
//
// CSV format: one point per row. With -labelcol -1 (default) the last
// column is the integer class label; any other value selects that column.
// Rows must be numeric; a non-numeric first row is treated as a header
// and skipped.
//
// Streaming selection: with -shards the pool is served block by block
// from memory-mapped float32 shard files (see dataset.ShardWriter for the
// format) instead of a resident CSV matrix, so it may exceed RAM. This
// mode runs one selection round — the production "which points should I
// get labeled next?" query — and prints the selected global row indices;
// there is no oracle to reveal labels, so no retraining loop. Pack a CSV
// into shards with -pack.
//
// Usage:
//
//	firal -pool pool.csv -labeled seed.csv -select approx-firal -rounds 3 -budget 10
//	firal -demo                       # run on a built-in synthetic dataset
//	firal -select help                # list registered strategies
//	firal -demo -target-acc 0.9      # stop once eval accuracy reaches 0.9
//	firal -pool pool.csv -labeled seed.csv -select random -csv
//	firal -pack pool.shard -pool pool.csv             # CSV → shard file
//	firal -shards pool.shard -labeled seed.csv -budget 10
//	firal -shards a.shard,b.shard -labeled seed.csv -select dist-firal -ranks 4
//
// Multi-process selection: with -transport tcp each OS process is one
// rank of the distributed solver. Rank 0 listens on the -peers address
// and every process announces its -rank; selections are bit-identical to
// the in-process -ranks run over the same shards. With -op-timeout the
// run also survives rank failures (survivors agree on the dead set,
// re-shard, and resume from the last checkpoint). See examples/distributed.
//
//	firal -shards pool.shard -labeled seed.csv -select dist-firal \
//	      -transport tcp -peers host:9907 -ranks 3 -rank $R -op-timeout 5s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"strings"

	pub "repro"
	"repro/internal/cli"
	"repro/internal/csvdata"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("firal: ")
	var (
		poolPath  = flag.String("pool", "", "CSV of pool points (features + label column)")
		labPath   = flag.String("labeled", "", "CSV of initially labeled points")
		evalPath  = flag.String("eval", "", "optional CSV of evaluation points")
		labelCol  = flag.Int("labelcol", -1, "label column index (-1 = last; -2 = no label column, features only — use with -pack)")
		selName   = flag.String("select", "approx-firal", "strategy name from the selector registry; 'help' lists them")
		ranks     = flag.Int("ranks", 3, "ranks for dist-firal")
		rounds    = flag.Int("rounds", 3, "active-learning rounds (0 = until pool exhausted or a stop criterion fires)")
		budget    = flag.Int("budget", 10, "points labeled per round")
		seed      = flag.Int64("seed", 1, "seed for stochastic strategies")
		probes    = flag.Int("probes", 10, "Rademacher probes for FIRAL")
		cgtol     = flag.Float64("cgtol", 0.1, "CG tolerance for FIRAL")
		relaxIt   = flag.Int("relaxiters", 0, "mirror-descent cap (0 = default 100)")
		workers   = flag.Int("workers", 0, "data-parallel workers (0 = all cores)")
		targetAcc = flag.Float64("target-acc", 0, "stop once accuracy reaches this (0 = off)")
		maxTime   = flag.Duration("max-time", 0, "wall-clock budget, e.g. 30s (0 = off)")
		asCSV     = flag.Bool("csv", false, "emit per-round results as CSV")
		demo      = flag.Bool("demo", false, "ignore -pool/-labeled and run a built-in synthetic demo")
		shards    = flag.String("shards", "", "comma-separated float32 shard files: stream-select one batch from an out-of-core pool")
		transport = flag.String("transport", "inproc", "dist-firal transport: inproc (goroutine ranks) or tcp (one OS process per rank)")
		rank      = flag.Int("rank", 0, "this process's rank with -transport tcp (-ranks is the world size)")
		peers     = flag.String("peers", "", "rendezvous host:port with -transport tcp (rank 0 listens there, everyone else dials)")
		chunk     = flag.Int("chunk", 0, "allreduce pipeline chunk in float64 elements (0 = unchunked; results are bit-identical)")
		opTimeout = flag.Duration("op-timeout", 0, "per-operation timeout enabling rank-failure recovery (0 = wait forever)")
		killAfter = flag.Int("kill-after", 0, "test hook: crash this process after N collective steps (0 = off)")
		blockRows = flag.Int("block", 0, "streaming row-block size (0 = default)")
		prefetch  = flag.Bool("prefetch", true, "overlap shard decode with compute via async block read-ahead (selections are identical either way; dist-firal ranks always prefetch)")
		pack      = flag.String("pack", "", "write the -pool CSV (features only) to this shard file and exit")
	)
	flag.Parse()

	if *pack != "" {
		if err := packShard(*pack, *poolPath, *labelCol); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *shards != "" {
		if err := streamSelect(streamConfig{
			shards: strings.Split(*shards, ","), labeled: *labPath, labelCol: *labelCol,
			selector: *selName, ranks: *ranks, budget: *budget, block: *blockRows,
			seed: *seed, probes: *probes, cgtol: *cgtol, relaxIters: *relaxIt, workers: *workers,
			prefetch:  *prefetch,
			transport: *transport, rank: *rank, peers: *peers, chunk: *chunk,
			opTimeout: *opTimeout, killAfter: *killAfter,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	if strings.EqualFold(*selName, "help") || strings.EqualFold(*selName, "list") {
		fmt.Println("registered strategies:")
		for _, name := range pub.Names() {
			fmt.Printf("  %s\n", name)
		}
		return
	}

	var cfg pub.Config
	if *demo {
		cfg = pub.CIFAR10Like().Scale(0.1).Generate(*seed)
	} else {
		if *poolPath == "" || *labPath == "" {
			log.Fatal("need -pool and -labeled CSV files (or -demo)")
		}
		poolX, poolY, err := csvdata.Load(*poolPath, *labelCol)
		if err != nil {
			log.Fatalf("pool: %v", err)
		}
		labX, labY, err := csvdata.Load(*labPath, *labelCol)
		if err != nil {
			log.Fatalf("labeled: %v", err)
		}
		cfg = pub.Config{
			PoolX: poolX, PoolY: poolY,
			LabeledX: labX, LabeledY: labY,
			Classes: csvdata.NumClasses(poolY, labY),
			Seed:    *seed,
		}
		if *evalPath != "" {
			evalX, evalY, err := csvdata.Load(*evalPath, *labelCol)
			if err != nil {
				log.Fatalf("eval: %v", err)
			}
			cfg.EvalX, cfg.EvalY = evalX, evalY
		}
	}
	hasEval := len(cfg.EvalX) > 0

	sel, err := pub.New(*selName, pub.SelectorOptions{
		FIRAL: pub.FIRALOptions{Probes: *probes, CGTol: *cgtol, MaxRelaxIterations: *relaxIt},
		Ranks: *ranks,
	})
	if err != nil {
		log.Fatal(err)
	}

	learner, err := pub.NewLearner(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Ctrl-C cancels the session mid-selection; completed rounds were
	// already streamed by the observer below.
	ctx, cancel := cli.InterruptContext()
	defer cancel()

	opts := []pub.RunOption{
		pub.WithRounds(*rounds),
		pub.WithBudget(*budget),
	}
	if *workers > 0 {
		opts = append(opts, pub.WithParallelism(*workers))
	}
	if *targetAcc > 0 {
		opts = append(opts, pub.WithStopCriterion(announcing(pub.TargetAccuracy(*targetAcc))))
	}
	if *maxTime > 0 {
		opts = append(opts, pub.WithStopCriterion(announcing(pub.MaxDuration(*maxTime))))
	}
	if *asCSV {
		fmt.Println("round,labels,pool_accuracy,eval_accuracy,balanced_eval_accuracy,select_seconds,train_seconds,selected")
		opts = append(opts, pub.WithObserver(func(r *pub.RoundReport) {
			fmt.Printf("%d,%d,%.4f,%.4f,%.4f,%.3f,%.3f,%s\n",
				r.Round, r.LabeledCount, r.PoolAccuracy, r.EvalAccuracy,
				r.BalancedEvalAccuracy, r.SelectSeconds, r.TrainSeconds,
				joinInts(r.Selected, ";"))
		}))
	} else {
		if *rounds > 0 {
			fmt.Printf("strategy: %s, %d rounds × %d points\n", sel.Name(), *rounds, *budget)
		} else {
			fmt.Printf("strategy: %s, unbounded rounds × %d points\n", sel.Name(), *budget)
		}
		opts = append(opts, pub.WithObserver(func(r *pub.RoundReport) {
			fmt.Printf("round %d: labels=%-4d pool acc=%.3f", r.Round, r.LabeledCount, r.PoolAccuracy)
			if hasEval {
				fmt.Printf(" eval acc=%.3f", r.EvalAccuracy)
			}
			fmt.Printf(" (select %.2fs, train %.2fs)\n", r.SelectSeconds, r.TrainSeconds)
			fmt.Printf("  selected: %s\n", joinInts(r.Selected, " "))
		}))
	}

	reports, err := learner.RunContext(ctx, sel, opts...)
	switch {
	case errors.Is(err, context.Canceled):
		log.Printf("interrupted after %d completed rounds", len(reports))
	case err != nil:
		log.Fatal(err)
	}
}

// announcing wraps a stop criterion so the reason is printed when it
// fires.
func announcing(c pub.StopCriterion) pub.StopCriterion {
	return func(r *pub.RoundReport) (bool, string) {
		stop, reason := c(r)
		if stop {
			log.Printf("stopping after round %d: %s", r.Round, reason)
		}
		return stop, reason
	}
}

func joinInts(xs []int, sep string) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, sep)
}
