// Command firal runs batch active learning on user-supplied data: point
// features and (oracle) labels are read from CSV files, a selection
// strategy is applied for a number of rounds, and the selected indices
// plus per-round accuracies are reported. This is the downstream-user
// entry point; the firal-* commands reproduce the paper's experiments.
//
// CSV format: one point per row. With -labelcol -1 (default) the last
// column is the integer class label; any other value selects that column.
// Rows must be numeric; a non-numeric first row is treated as a header
// and skipped.
//
// Usage:
//
//	firal -pool pool.csv -labeled seed.csv -select approx-firal -rounds 3 -budget 10
//	firal -demo                       # run on a built-in synthetic dataset
//	firal -pool pool.csv -labeled seed.csv -select random -csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	pub "repro"
	"repro/internal/csvdata"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("firal: ")
	var (
		poolPath = flag.String("pool", "", "CSV of pool points (features + label column)")
		labPath  = flag.String("labeled", "", "CSV of initially labeled points")
		evalPath = flag.String("eval", "", "optional CSV of evaluation points")
		labelCol = flag.Int("labelcol", -1, "label column index (-1 = last)")
		selName  = flag.String("select", "approx-firal", "strategy: random, kmeans, entropy, margin, least-confidence, exact-firal, approx-firal, dist-firal")
		ranks    = flag.Int("ranks", 3, "ranks for dist-firal")
		rounds   = flag.Int("rounds", 3, "active-learning rounds")
		budget   = flag.Int("budget", 10, "points labeled per round")
		seed     = flag.Int64("seed", 1, "seed for stochastic strategies")
		probes   = flag.Int("probes", 10, "Rademacher probes for FIRAL")
		cgtol    = flag.Float64("cgtol", 0.1, "CG tolerance for FIRAL")
		relaxIt  = flag.Int("relaxiters", 0, "mirror-descent cap (0 = default 100)")
		asCSV    = flag.Bool("csv", false, "emit per-round results as CSV")
		demo     = flag.Bool("demo", false, "ignore -pool/-labeled and run a built-in synthetic demo")
	)
	flag.Parse()

	var cfg pub.Config
	if *demo {
		cfg = pub.CIFAR10Like().Scale(0.1).Generate(*seed)
	} else {
		if *poolPath == "" || *labPath == "" {
			log.Fatal("need -pool and -labeled CSV files (or -demo)")
		}
		poolX, poolY, err := csvdata.Load(*poolPath, *labelCol)
		if err != nil {
			log.Fatalf("pool: %v", err)
		}
		labX, labY, err := csvdata.Load(*labPath, *labelCol)
		if err != nil {
			log.Fatalf("labeled: %v", err)
		}
		cfg = pub.Config{
			PoolX: poolX, PoolY: poolY,
			LabeledX: labX, LabeledY: labY,
			Classes: csvdata.NumClasses(poolY, labY),
			Seed:    *seed,
		}
		if *evalPath != "" {
			evalX, evalY, err := csvdata.Load(*evalPath, *labelCol)
			if err != nil {
				log.Fatalf("eval: %v", err)
			}
			cfg.EvalX, cfg.EvalY = evalX, evalY
		}
	}

	opts := pub.FIRALOptions{Probes: *probes, CGTol: *cgtol, MaxRelaxIterations: *relaxIt}
	sel, err := strategy(*selName, *ranks, opts)
	if err != nil {
		log.Fatal(err)
	}

	learner, err := pub.NewLearner(cfg)
	if err != nil {
		log.Fatal(err)
	}
	reports, err := learner.Run(sel, *rounds, *budget)
	if err != nil {
		log.Fatal(err)
	}

	if *asCSV {
		fmt.Println("round,labels,pool_accuracy,eval_accuracy,select_seconds,selected")
		for _, r := range reports {
			fmt.Printf("%d,%d,%.4f,%.4f,%.3f,%s\n",
				r.Round, r.LabeledCount, r.PoolAccuracy, r.EvalAccuracy,
				r.SelectSeconds, joinInts(r.Selected, ";"))
		}
		return
	}
	fmt.Printf("strategy: %s, %d rounds × %d points\n", sel.Name(), *rounds, *budget)
	for _, r := range reports {
		fmt.Printf("round %d: labels=%-4d pool acc=%.3f", r.Round, r.LabeledCount, r.PoolAccuracy)
		if len(cfg.EvalX) > 0 {
			fmt.Printf(" eval acc=%.3f", r.EvalAccuracy)
		}
		fmt.Printf(" (select %.2fs)\n", r.SelectSeconds)
		fmt.Printf("  selected: %s\n", joinInts(r.Selected, " "))
	}
	_ = os.Stdout.Sync()
}

func strategy(name string, ranks int, o pub.FIRALOptions) (pub.Selector, error) {
	switch strings.ToLower(name) {
	case "random":
		return pub.Random(), nil
	case "kmeans", "k-means":
		return pub.KMeans(), nil
	case "entropy":
		return pub.Entropy(), nil
	case "margin":
		return pub.Margin(), nil
	case "least-confidence", "leastconfidence":
		return pub.LeastConfidence(), nil
	case "exact-firal":
		return pub.ExactFIRAL(o), nil
	case "approx-firal", "firal":
		return pub.ApproxFIRAL(o), nil
	case "dist-firal", "distributed-firal":
		return pub.DistributedFIRAL(ranks, o), nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", name)
	}
}

func joinInts(xs []int, sep string) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, sep)
}
