package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	pub "repro"
	"repro/internal/cli"
	"repro/internal/csvdata"
	"repro/internal/dataset"
	"repro/internal/distfiral"
	"repro/internal/firal"
	"repro/internal/hessian"
	"repro/internal/logreg"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/parallel"
	"repro/internal/softmax"
)

// packShard converts a numeric CSV into the float32 shard format, block
// by block — the one-time step that makes a pool cheap to re-score.
func packShard(out, csvPath string, labelCol int) error {
	if csvPath == "" {
		return fmt.Errorf("-pack needs -pool pointing at the CSV to convert")
	}
	src, err := dataset.NewCSVSource(csvPath, labelCol)
	if err != nil {
		return err
	}
	defer src.Close()
	w, err := dataset.CreateShard(out, src.Dim())
	if err != nil {
		return err
	}
	block := mat.NewDense(dataset.DefaultBlockRows, src.Dim())
	for lo := 0; lo < src.NumRows(); lo += block.Rows {
		hi := min(lo+block.Rows, src.NumRows())
		b := block.RowSlice(0, hi-lo)
		if err := src.ReadRows(lo, hi, b); err != nil {
			return err
		}
		if err := w.AppendBlock(b); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	log.Printf("packed %d×%d rows of %s into %s (features only; labels are not stored)",
		src.NumRows(), src.Dim(), csvPath, out)
	return nil
}

// streamConfig carries the flag subset of the streaming selection mode.
type streamConfig struct {
	shards     []string
	labeled    string
	labelCol   int
	selector   string
	ranks      int
	budget     int
	block      int
	seed       int64
	probes     int
	cgtol      float64
	relaxIters int
	workers    int
	prefetch   bool
}

// streamSelect runs one Approx-FIRAL batch selection over a pool served
// from shard files: train on the labeled CSV, stream the pool once to
// compute the classifier probabilities (the only resident per-point
// state, O(n·c)), then select through the block-streaming solver path and
// print the chosen global row indices.
//
// Cost shape: ROUND streams one decode sweep per rescoring pass, and
// RELAX — via block CG over the probe block — one decode sweep per CG
// iteration plus a handful per mirror-descent iteration, independent of
// -probes. Use -select dist-firal to additionally have each rank decode
// only its own slice.
func streamSelect(cfg streamConfig) error {
	// Resolve through the selector registry so aliases ("firal", "dist",
	// …) work here exactly as in the resident path, and unknown names get
	// the same actionable listing.
	name, known := pub.CanonicalName(cfg.selector)
	if !known {
		return fmt.Errorf("unknown selector %q (registered: %s)",
			cfg.selector, strings.Join(pub.Names(), ", "))
	}
	switch name {
	case "Exact-FIRAL":
		// Surface the solver's own typed error: Algorithm 1 assembles
		// dense pool Hessians, which requires a resident pool, and a
		// shard-backed pool is exactly the one that doesn't fit.
		return fmt.Errorf("-select %s over -shards: %w", cfg.selector, firal.ErrResidentPool)
	case "Approx-FIRAL", "Dist-FIRAL":
	default:
		return fmt.Errorf("streaming selection supports -select approx-firal or dist-firal, not %s", name)
	}
	if cfg.labeled == "" {
		return fmt.Errorf("streaming selection needs -labeled (the classifier trains on it)")
	}
	if cfg.workers > 0 {
		lim := parallel.AcquireLimit(cfg.workers)
		defer lim.Release()
	}

	labX, labY, err := csvdata.Load(cfg.labeled, cfg.labelCol)
	if err != nil {
		return fmt.Errorf("labeled: %w", err)
	}
	classes := csvdata.NumClasses(labY)
	if classes < 2 {
		return fmt.Errorf("labeled set has %d class(es); need at least 2", classes)
	}
	labM := mat.FromRows(labX)
	model, err := logreg.Train(labM, labY, classes, nil, logreg.Options{})
	if err != nil {
		return err
	}

	src, err := dataset.OpenShards(cfg.shards...)
	if err != nil {
		return err
	}
	defer src.Close()
	if src.Dim() != labM.Cols {
		return fmt.Errorf("shard dimension %d does not match labeled dimension %d", src.Dim(), labM.Cols)
	}
	n := src.NumRows()
	log.Printf("pool: %d × %d from %d shard(s), %d classes", n, src.Dim(), len(cfg.shards), classes)

	// One streamed pass to attach reduced probabilities (Eq. 1): per
	// block, softmax under the trained model, last class dropped. Only
	// the n×(c−1) reduced matrix stays resident.
	t0 := time.Now()
	reduced := mat.NewDense(n, classes-1)
	block := mat.NewDense(dataset.DefaultBlockRows, src.Dim())
	probsBlock := mat.NewDense(dataset.DefaultBlockRows, classes)
	for lo := 0; lo < n; lo += block.Rows {
		hi := min(lo+block.Rows, n)
		xb := block.RowSlice(0, hi-lo)
		if err := src.ReadRows(lo, hi, xb); err != nil {
			return err
		}
		pb := softmax.Probabilities(probsBlock.RowSlice(0, hi-lo), xb, model.Theta)
		for i := lo; i < hi; i++ {
			copy(reduced.Row(i), pb.Row(i - lo)[:classes-1])
		}
	}
	log.Printf("probabilities attached in %.2fs", time.Since(t0).Seconds())

	labProbs := hessian.ReduceProbs(softmax.Probabilities(nil, labM, model.Theta))
	labeled := hessian.NewSet(labM, labProbs)
	relax := firal.RelaxOptions{
		Probes: cfg.probes, CGTol: cfg.cgtol, MaxIter: cfg.relaxIters, Seed: cfg.seed,
	}

	ctx, cancel := cli.InterruptContext()
	defer cancel()
	t0 = time.Now()
	var picked []int
	if name == "Dist-FIRAL" {
		ranks := max(cfg.ranks, 1)
		selected := make([][]int, ranks)
		errs := make([]error, ranks)
		mpi.Run(ranks, func(c *mpi.Comm) {
			sh := distfiral.MakeStreamShard(labeled, src, reduced, cfg.block, ranks, c.Rank())
			sel, _, _, err := distfiral.Select(ctx, c, sh, cfg.budget, 0, relax)
			selected[c.Rank()], errs[c.Rank()] = sel, err
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		picked = selected[0]
	} else {
		// -prefetch (default on) overlaps each block's float32 decode with
		// the previous block's solver kernels; selections are bit-identical
		// either way, so the flag exists only to measure the overlap and to
		// fall back if a platform misbehaves. The prefetcher's Close closes
		// src too — harmless next to the defer above (shard Close is
		// idempotent), and it guarantees the in-flight read is drained
		// before the mapping goes away.
		var swept dataset.PoolSource = src
		if cfg.prefetch {
			swept = dataset.WithPrefetch(ctx, swept, cfg.block)
			defer swept.Close()
		}
		pool := hessian.NewStream(swept, reduced, cfg.block)
		p := firal.NewProblem(labeled, pool)
		res, err := firal.SelectApprox(ctx, p, cfg.budget, firal.Options{Relax: relax})
		if err != nil {
			return err
		}
		picked = res.Selected
	}
	log.Printf("selected %d of %d points in %.2fs", len(picked), n, time.Since(t0).Seconds())
	for _, i := range picked {
		fmt.Println(i)
	}
	return nil
}
