package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	pub "repro"
	"repro/internal/cli"
	"repro/internal/csvdata"
	"repro/internal/dataset"
	"repro/internal/distfiral"
	"repro/internal/firal"
	"repro/internal/hessian"
	"repro/internal/logreg"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/parallel"
	"repro/internal/softmax"
)

// packShard converts a numeric CSV into the float32 shard format, block
// by block — the one-time step that makes a pool cheap to re-score.
func packShard(out, csvPath string, labelCol int) error {
	if csvPath == "" {
		return fmt.Errorf("-pack needs -pool pointing at the CSV to convert")
	}
	src, err := dataset.NewCSVSource(csvPath, labelCol)
	if err != nil {
		return err
	}
	defer src.Close()
	w, err := dataset.CreateShard(out, src.Dim())
	if err != nil {
		return err
	}
	block := mat.NewDense(dataset.DefaultBlockRows, src.Dim())
	for lo := 0; lo < src.NumRows(); lo += block.Rows {
		hi := min(lo+block.Rows, src.NumRows())
		b := block.RowSlice(0, hi-lo)
		if err := src.ReadRows(lo, hi, b); err != nil {
			return err
		}
		if err := w.AppendBlock(b); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	log.Printf("packed %d×%d rows of %s into %s (features only; labels are not stored)",
		src.NumRows(), src.Dim(), csvPath, out)
	return nil
}

// streamConfig carries the flag subset of the streaming selection mode.
type streamConfig struct {
	shards     []string
	labeled    string
	labelCol   int
	selector   string
	ranks      int
	budget     int
	block      int
	seed       int64
	probes     int
	cgtol      float64
	relaxIters int
	workers    int
	prefetch   bool

	// Real-network mode (-transport tcp): this process is rank `rank` of
	// a `ranks`-wide world bootstrapped through the `peers` rendezvous.
	transport string
	rank      int
	peers     string
	chunk     int
	opTimeout time.Duration
	killAfter int
}

// streamSelect runs one Approx-FIRAL batch selection over a pool served
// from shard files: train on the labeled CSV, stream the pool once to
// compute the classifier probabilities (the only resident per-point
// state, O(n·c)), then select through the block-streaming solver path and
// print the chosen global row indices.
//
// Cost shape: ROUND streams one decode sweep per rescoring pass, and
// RELAX — via block CG over the probe block — one decode sweep per CG
// iteration plus a handful per mirror-descent iteration, independent of
// -probes. Use -select dist-firal to additionally have each rank decode
// only its own slice.
func streamSelect(cfg streamConfig) error {
	// Resolve through the selector registry so aliases ("firal", "dist",
	// …) work here exactly as in the resident path, and unknown names get
	// the same actionable listing.
	name, known := pub.CanonicalName(cfg.selector)
	if !known {
		return fmt.Errorf("unknown selector %q (registered: %s)",
			cfg.selector, strings.Join(pub.Names(), ", "))
	}
	switch name {
	case "Exact-FIRAL":
		// Surface the solver's own typed error: Algorithm 1 assembles
		// dense pool Hessians, which requires a resident pool, and a
		// shard-backed pool is exactly the one that doesn't fit.
		return fmt.Errorf("-select %s over -shards: %w", cfg.selector, firal.ErrResidentPool)
	case "Approx-FIRAL", "Dist-FIRAL":
	default:
		return fmt.Errorf("streaming selection supports -select approx-firal or dist-firal, not %s", name)
	}
	if cfg.labeled == "" {
		return fmt.Errorf("streaming selection needs -labeled (the classifier trains on it)")
	}
	if cfg.workers > 0 {
		lim := parallel.AcquireLimit(cfg.workers)
		defer lim.Release()
	}

	labX, labY, err := csvdata.Load(cfg.labeled, cfg.labelCol)
	if err != nil {
		return fmt.Errorf("labeled: %w", err)
	}
	classes := csvdata.NumClasses(labY)
	if classes < 2 {
		return fmt.Errorf("labeled set has %d class(es); need at least 2", classes)
	}
	labM := mat.FromRows(labX)
	model, err := logreg.Train(labM, labY, classes, nil, logreg.Options{})
	if err != nil {
		return err
	}

	src, err := dataset.OpenShards(cfg.shards...)
	if err != nil {
		return err
	}
	defer src.Close()
	if src.Dim() != labM.Cols {
		return fmt.Errorf("shard dimension %d does not match labeled dimension %d", src.Dim(), labM.Cols)
	}
	n := src.NumRows()
	log.Printf("pool: %d × %d from %d shard(s), %d classes", n, src.Dim(), len(cfg.shards), classes)

	// One streamed pass to attach reduced probabilities (Eq. 1): per
	// block, softmax under the trained model, last class dropped. Only
	// the n×(c−1) reduced matrix stays resident.
	t0 := time.Now()
	reduced := mat.NewDense(n, classes-1)
	block := mat.NewDense(dataset.DefaultBlockRows, src.Dim())
	probsBlock := mat.NewDense(dataset.DefaultBlockRows, classes)
	for lo := 0; lo < n; lo += block.Rows {
		hi := min(lo+block.Rows, n)
		xb := block.RowSlice(0, hi-lo)
		if err := src.ReadRows(lo, hi, xb); err != nil {
			return err
		}
		pb := softmax.Probabilities(probsBlock.RowSlice(0, hi-lo), xb, model.Theta)
		for i := lo; i < hi; i++ {
			copy(reduced.Row(i), pb.Row(i - lo)[:classes-1])
		}
	}
	log.Printf("probabilities attached in %.2fs", time.Since(t0).Seconds())

	labProbs := hessian.ReduceProbs(softmax.Probabilities(nil, labM, model.Theta))
	labeled := hessian.NewSet(labM, labProbs)
	relax := firal.RelaxOptions{
		Probes: cfg.probes, CGTol: cfg.cgtol, MaxIter: cfg.relaxIters, Seed: cfg.seed,
	}

	ctx, cancel := cli.InterruptContext()
	defer cancel()
	t0 = time.Now()
	var picked []int
	switch {
	case name == "Dist-FIRAL" && cfg.transport == "tcp":
		picked, err = tcpSelect(ctx, cfg, labeled, src, reduced, relax)
		if err != nil {
			return err
		}
	case name == "Dist-FIRAL":
		ranks := max(cfg.ranks, 1)
		selected := make([][]int, ranks)
		errs := make([]error, ranks)
		mpi.Run(ranks, func(c *mpi.Comm) {
			c.SetChunk(cfg.chunk)
			sh := distfiral.MakeStreamShard(labeled, src, reduced, cfg.block, ranks, c.Rank())
			sel, _, _, err := distfiral.Select(ctx, c, sh, cfg.budget, 0, relax)
			selected[c.Rank()], errs[c.Rank()] = sel, err
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		picked = selected[0]
	default:
		// -prefetch (default on) overlaps each block's float32 decode with
		// the previous block's solver kernels; selections are bit-identical
		// either way, so the flag exists only to measure the overlap and to
		// fall back if a platform misbehaves. The prefetcher's Close closes
		// src too — harmless next to the defer above (shard Close is
		// idempotent), and it guarantees the in-flight read is drained
		// before the mapping goes away.
		var swept dataset.PoolSource = src
		if cfg.prefetch {
			swept = dataset.WithPrefetch(ctx, swept, cfg.block)
			defer swept.Close()
		}
		pool := hessian.NewStream(swept, reduced, cfg.block)
		p := firal.NewProblem(labeled, pool)
		res, err := firal.SelectApprox(ctx, p, cfg.budget, firal.Options{Relax: relax})
		if err != nil {
			return err
		}
		picked = res.Selected
	}
	log.Printf("selected %d of %d points in %.2fs", len(picked), n, time.Since(t0).Seconds())
	for _, i := range picked {
		fmt.Println(i)
	}
	return nil
}

// tcpSelect runs this process as one rank of a real-network distributed
// selection: bootstrap through the rendezvous address (rank 0 listens,
// everyone else dials), then run the same distfiral solve as the
// in-process path — selections are bit-identical by construction. With
// -op-timeout set the run is resilient: a crashed rank is detected by
// deadline, the survivors agree on the dead set, re-shard the pool, and
// resume from the last global checkpoint.
func tcpSelect(ctx context.Context, cfg streamConfig, labeled *hessian.Set, src dataset.PoolSource, reduced *mat.Dense, relax firal.RelaxOptions) ([]int, error) {
	if cfg.peers == "" {
		return nil, fmt.Errorf("-transport tcp needs -peers host:port (the rendezvous address)")
	}
	if cfg.rank < 0 || cfg.rank >= cfg.ranks {
		return nil, fmt.Errorf("-rank %d outside the %d-rank world", cfg.rank, cfg.ranks)
	}
	bctx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	log.Printf("rank %d/%d: bootstrapping via %s", cfg.rank, cfg.ranks, cfg.peers)
	tr, err := mpi.ConnectTCP(bctx, cfg.peers, cfg.rank, cfg.ranks)
	if err != nil {
		return nil, fmt.Errorf("tcp bootstrap: %w", err)
	}
	defer tr.Close()
	if cfg.killAfter > 0 {
		tr = &killTransport{Transport: tr, after: cfg.killAfter}
	}
	c := mpi.NewComm(tr)
	c.SetChunk(cfg.chunk)

	if cfg.opTimeout > 0 {
		c.SetOpTimeout(cfg.opTimeout)
		mk := func(size, rank int) (*distfiral.Shard, error) {
			return distfiral.MakeStreamShard(labeled, src, reduced, cfg.block, size, rank), nil
		}
		res, err := distfiral.SelectResilient(ctx, c, mk, cfg.budget, 0, relax)
		if err != nil {
			return nil, err
		}
		if len(res.LostRanks) > 0 {
			log.Printf("rank %d/%d: recovered from lost rank(s) %v after %d heal(s)",
				res.Rank, res.Size, res.LostRanks, len(res.ResumePoints))
		}
		return res.Selected, nil
	}
	sh := distfiral.MakeStreamShard(labeled, src, reduced, cfg.block, cfg.ranks, cfg.rank)
	sel, _, _, err := distfiral.Select(ctx, c, sh, cfg.budget, 0, relax)
	return sel, err
}

// killTransport is the -kill-after test hook: it crash-stops the process
// (os.Exit, no cleanup — exactly what a killed rank looks like to its
// peers) once its endpoint has participated in the configured number of
// collective steps. Collective tags are negative and change per step, so
// counting distinct ones counts collectives.
type killTransport struct {
	mpi.Transport
	mu      sync.Mutex
	after   int
	seen    int
	lastTag int
}

func (k *killTransport) step(tag int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if tag < 0 && tag != k.lastTag {
		k.lastTag = tag
		k.seen++
	}
	if k.seen > k.after {
		log.Printf("rank %d: -kill-after %d reached, crashing", k.Transport.Rank(), k.after)
		os.Exit(3)
	}
}

func (k *killTransport) Send(dst, tag int, data []float64, deadline time.Time) error {
	k.step(tag)
	return k.Transport.Send(dst, tag, data, deadline)
}

func (k *killTransport) Recv(src, tag int, deadline time.Time) ([]float64, error) {
	k.step(tag)
	return k.Transport.Recv(src, tag, deadline)
}
