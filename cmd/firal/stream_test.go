package main

import (
	"errors"
	"strings"
	"testing"

	pub "repro"
	"repro/internal/firal"
)

// TestStreamSelectExactReturnsTypedError pins the CLI entry point of the
// residency contract: `firal -shards … -select exact` (and the canonical
// registry spelling) must fail with the solver's typed
// firal.ErrResidentPool — so scripts can distinguish "this mode cannot
// exist" from an I/O or flag error — before any file is opened.
func TestStreamSelectExactReturnsTypedError(t *testing.T) {
	for _, sel := range []string{"exact", "Exact-FIRAL", "EXACT"} {
		err := streamSelect(streamConfig{selector: sel})
		if !errors.Is(err, firal.ErrResidentPool) {
			t.Fatalf("-select %s over shards: err = %v, want firal.ErrResidentPool", sel, err)
		}
	}
	// Non-exact unknown selectors keep the generic usage error.
	if err := streamSelect(streamConfig{selector: "entropy"}); err == nil || errors.Is(err, firal.ErrResidentPool) {
		t.Fatalf("-select entropy over shards: err = %v, want a generic usage error", err)
	}
}

// TestStreamSelectorResolution pins that the streaming path resolves
// names through the selector registry: aliases reach the streaming
// solvers instead of being rejected by literal string-matching, and an
// unknown name fails with the full registry listing — the same
// experience as `firal -select help`.
func TestStreamSelectorResolution(t *testing.T) {
	// Registry aliases of the streaming-capable selectors must pass name
	// resolution. With no -labeled file they fail at the next check, whose
	// message names the real gap — not an "unsupported selector" error.
	for _, sel := range []string{"firal", "approx", "Approx-FIRAL", "dist", "distributed-firal"} {
		err := streamSelect(streamConfig{selector: sel})
		if err == nil || !strings.Contains(err.Error(), "-labeled") {
			t.Fatalf("-select %s: err = %v, want the missing -labeled error after alias resolution", sel, err)
		}
	}
	// Unknown names list every registered strategy.
	err := streamSelect(streamConfig{selector: "gradient-boost"})
	if err == nil {
		t.Fatal("unknown selector accepted")
	}
	for _, name := range pub.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-selector error %q does not list %s", err, name)
		}
	}
}
