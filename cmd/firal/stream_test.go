package main

import (
	"errors"
	"testing"

	"repro/internal/firal"
)

// TestStreamSelectExactReturnsTypedError pins the CLI entry point of the
// residency contract: `firal -shards … -select exact` (and the canonical
// registry spelling) must fail with the solver's typed
// firal.ErrResidentPool — so scripts can distinguish "this mode cannot
// exist" from an I/O or flag error — before any file is opened.
func TestStreamSelectExactReturnsTypedError(t *testing.T) {
	for _, sel := range []string{"exact", "Exact-FIRAL", "EXACT"} {
		err := streamSelect(streamConfig{selector: sel})
		if !errors.Is(err, firal.ErrResidentPool) {
			t.Fatalf("-select %s over shards: err = %v, want firal.ErrResidentPool", sel, err)
		}
	}
	// Non-exact unknown selectors keep the generic usage error.
	if err := streamSelect(streamConfig{selector: "entropy"}); err == nil || errors.Is(err, firal.ErrResidentPool) {
		t.Fatalf("-select entropy over shards: err = %v, want a generic usage error", err)
	}
}
