// Command firal-time regenerates Table VI: wall-clock comparison of
// Exact-FIRAL vs Approx-FIRAL RELAX and ROUND steps on ImageNet-50-like
// and Caltech-101-like problems, plus the analytic complexity Tables II
// and III.
//
// Usage:
//
//	firal-time -scale 0.1 -relaxiters 5
//	firal-time -tables
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/perfmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("firal-time: ")
	var (
		name       = flag.String("dataset", "", "single dataset (default: ImageNet-50 and Caltech-101, as in Table VI)")
		scale      = flag.Float64("scale", 0.05, "pool size scale factor")
		seed       = flag.Int64("seed", 1, "seed")
		relaxIters = flag.Int("relaxiters", 5, "mirror-descent iterations timed in both solvers")
		tables     = flag.Bool("tables", false, "print analytic Tables II and III at paper scale and exit")
		// Dimension overrides for host-sized reductions (0 = keep Table V
		// values); Exact-FIRAL at d=50, c=50 is out of reach of a laptop.
		dOver = flag.Int("d", 0, "override feature dimension")
		cOver = flag.Int("c", 0, "override class count")
		bOver = flag.Int("budget", 0, "override budget")
	)
	flag.Parse()

	ctx, cancel := cli.InterruptContext()
	defer cancel()

	if *tables {
		fmt.Print(perfmodel.FormatTableII(100, 50, 5000, 50, 50, 50, 10))
		fmt.Println()
		fmt.Print(perfmodel.FormatTableIII(383, 1000))
		return
	}

	var cfgs []dataset.Config
	if *name != "" {
		for _, c := range dataset.TableV() {
			if strings.EqualFold(c.Name, *name) {
				cfgs = append(cfgs, c)
			}
		}
		if len(cfgs) == 0 {
			log.Fatalf("unknown dataset %q", *name)
		}
	} else {
		cfgs = []dataset.Config{dataset.ImageNet50(), dataset.Caltech101()}
	}

	for i := range cfgs {
		if *dOver > 0 {
			cfgs[i].Dim = *dOver
			cfgs[i].Name += " (reduced)"
		}
		if *cOver > 0 {
			cfgs[i].Classes = *cOver
		}
		if *bOver > 0 {
			cfgs[i].Budget = *bOver
		}
	}

	var comparisons []*experiments.TimeComparison
	for _, cfg := range cfgs {
		tc, err := experiments.RunTableVI(ctx, cfg, *scale, *seed, *relaxIters)
		if err != nil {
			log.Fatalf("%s: %v", cfg.Name, err)
		}
		comparisons = append(comparisons, tc)
	}
	experiments.PrintTableVI(os.Stdout, comparisons)
}
