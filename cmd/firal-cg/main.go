// Command firal-cg regenerates Fig. 1: CG convergence with and without
// the block-diagonal preconditioner on CIFAR-10-like and
// ImageNet-1k-like problems, including the condition-number comparison of
// § III-A.
//
// Usage:
//
//	firal-cg -scale 0.1
//	firal-cg -dataset ImageNet-1k -scale 0.01 -tol 1e-3
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("firal-cg: ")
	var (
		name    = flag.String("dataset", "", "single dataset (default: CIFAR-10 and ImageNet-1k, as in Fig. 1)")
		scale   = flag.Float64("scale", 0.1, "pool size scale factor")
		seed    = flag.Int64("seed", 1, "seed")
		tol     = flag.Float64("tol", 1e-3, "CG termination tolerance for the recorded runs")
		maxIter = flag.Int("maxiter", 800, "CG iteration cap")
		condEd  = flag.Int("maxcond", 500, "max ẽd for dense condition-number computation (0 = skip)")
	)
	flag.Parse()

	ctx, cancel := cli.InterruptContext()
	defer cancel()

	var cfgs []dataset.Config
	if *name != "" {
		for _, c := range dataset.TableV() {
			if strings.EqualFold(c.Name, *name) {
				cfgs = append(cfgs, c)
			}
		}
		if len(cfgs) == 0 {
			log.Fatalf("unknown dataset %q", *name)
		}
	} else {
		cfgs = []dataset.Config{dataset.CIFAR10(), dataset.ImageNet1k()}
	}

	for _, cfg := range cfgs {
		res, err := experiments.RunCGConvergence(ctx, cfg, *scale, *seed, *tol, *maxIter, *condEd)
		if err != nil {
			log.Fatalf("%s: %v", cfg.Name, err)
		}
		experiments.PrintCGConvergence(os.Stdout, res)
		fmt.Println()
	}
}
