package firal_test

// One benchmark family per paper table/figure (DESIGN.md § 4). Each
// benchmark regenerates a scaled version of the corresponding experiment;
// the cmd/ binaries print the full series at arbitrary sizes. Run with
//
//	go test -bench=. -benchmem
//
// Naming: Benchmark<ID>_<variant> where ID is the paper table/figure.

import (
	"context"
	"fmt"
	"testing"

	pub "repro"
	"repro/internal/dataset"
	"repro/internal/distfiral"
	"repro/internal/experiments"
	"repro/internal/firal"
	"repro/internal/hessian"
	"repro/internal/krylov"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/rnd"
)

// benchProblem builds a FIRAL problem for performance benchmarks.
func benchProblem(n, d, c int, seed int64) *firal.Problem {
	labeled, pool := experiments.SynthSets(2*c, n, d, c, seed)
	return firal.NewProblem(labeled, pool)
}

// --- Fig. 1: CG with and without the block-diagonal preconditioner. ---

func benchmarkFig1(b *testing.B, precond bool) {
	p := benchProblem(2000, 24, 9, 1)
	z := make([]float64, p.N())
	mat.Fill(z, 1/float64(p.N()))
	sig := p.SigmaMatVec(z)
	var pc func(dst, v []float64)
	if precond {
		blocks := p.SigmaBlocks(z)
		var err error
		pc, err = firal.BlockPreconditioner(blocks)
		if err != nil {
			b.Fatal(err)
		}
	}
	rhs := make([]float64, p.Ed())
	rnd.New(2).Rademacher(rhs)
	x := make([]float64, p.Ed())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.Fill(x, 0)
		res := krylov.PCG(context.Background(), sig, pc, rhs, x, krylov.Options{Tol: 1e-3, MaxIter: 600})
		b.ReportMetric(float64(res.Iterations), "cg-iters")
	}
}

func BenchmarkFig1_CGPlain(b *testing.B)          { benchmarkFig1(b, false) }
func BenchmarkFig1_CGPreconditioned(b *testing.B) { benchmarkFig1(b, true) }

// --- Fig. 2/3: one active-learning round per selector. ---

func benchmarkAccuracyRound(b *testing.B, mk func() pub.Selector, cfg dataset.Config) {
	bench := pub.Synthetic{
		Name: cfg.Name, Classes: cfg.Classes, Dim: cfg.Dim,
		PoolSize: cfg.PoolSize, EvalSize: cfg.EvalSize,
		InitPerClass: cfg.InitPerClass, Rounds: cfg.Rounds, Budget: cfg.Budget,
		ImbalanceRatio: cfg.ImbalanceRatio,
	}
	learnCfg := bench.Generate(11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		learner, err := pub.NewLearner(learnCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rep, err := learner.Step(mk(), cfg.Budget)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.EvalAccuracy, "eval-acc")
	}
}

func fig2Config() dataset.Config { return dataset.CIFAR10().Scale(0.1) }

func BenchmarkFig2_Random(b *testing.B) {
	benchmarkAccuracyRound(b, func() pub.Selector { return pub.Random() }, fig2Config())
}

func BenchmarkFig2_KMeans(b *testing.B) {
	benchmarkAccuracyRound(b, func() pub.Selector { return pub.KMeans() }, fig2Config())
}

func BenchmarkFig2_Entropy(b *testing.B) {
	benchmarkAccuracyRound(b, func() pub.Selector { return pub.Entropy() }, fig2Config())
}

func BenchmarkFig2_ExactFIRAL(b *testing.B) {
	benchmarkAccuracyRound(b, func() pub.Selector { return pub.ExactFIRAL(pub.FIRALOptions{MaxRelaxIterations: 20}) }, fig2Config())
}

func BenchmarkFig2_ApproxFIRAL(b *testing.B) {
	benchmarkAccuracyRound(b, func() pub.Selector { return pub.ApproxFIRAL(pub.FIRALOptions{MaxRelaxIterations: 20}) }, fig2Config())
}

// Fig. 3 uses a Caltech-101-shaped config (imbalanced, many classes; no
// Exact-FIRAL, as in the paper) at the reduced dimensions recorded in
// EXPERIMENTS.md.
func BenchmarkFig3_ApproxFIRAL_Caltech101(b *testing.B) {
	cfg := dataset.Caltech101().Scale(0.3)
	cfg.Dim, cfg.Classes, cfg.Budget, cfg.Rounds = 32, 34, 20, 3
	benchmarkAccuracyRound(b, func() pub.Selector {
		return pub.ApproxFIRAL(pub.FIRALOptions{MaxRelaxIterations: 10})
	}, cfg)
}

// --- Fig. 4: RELAX sensitivity to s (probe count). ---

func benchmarkFig4(b *testing.B, s int) {
	p := benchProblem(600, 20, 9, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := firal.RelaxFast(context.Background(), p, 10, firal.RelaxOptions{
			FixedIterations: 5, Probes: s, Seed: int64(i), RecordObjective: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Objectives[len(res.Objectives)-1], "objective")
	}
}

func BenchmarkFig4_RelaxS10(b *testing.B)  { benchmarkFig4(b, 10) }
func BenchmarkFig4_RelaxS20(b *testing.B)  { benchmarkFig4(b, 20) }
func BenchmarkFig4_RelaxS100(b *testing.B) { benchmarkFig4(b, 100) }

// --- Table III: direct vs fast (Lemma 2) per-point Hessian matvec. ---
// The paper's comparison is per point: the direct method forms/applies the
// dense dc×dc H_i (O(d²c²) storage and compute) while the fast method
// needs O(dc) of both.

func matvecSets(n, d, c int) (*hessian.Set, []float64) {
	_, pool := experiments.SynthSets(2, n, d, c, 4)
	v := make([]float64, d*c)
	rnd.New(5).Normal(v, 0, 1)
	return pool, v
}

func BenchmarkTableIII_FastMatvec(b *testing.B) {
	pool, v := matvecSets(4, 32, 15)
	dst := make([]float64, len(v))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hessian.PointMatVec(dst, pool.X.Row(0), pool.H.Row(0), v)
	}
}

func BenchmarkTableIII_DirectMatvec(b *testing.B) {
	pool, v := matvecSets(4, 32, 15)
	dense := hessian.DensePoint(pool.X.Row(0), pool.H.Row(0))
	dst := make([]float64, len(v))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MatVec(dst, dense, v)
	}
}

// BenchmarkTableIII_DirectAssembly includes the H_i materialization the
// direct method cannot avoid when Hessians change (every RELAX iteration).
func BenchmarkTableIII_DirectAssembly(b *testing.B) {
	pool, v := matvecSets(4, 32, 15)
	dst := make([]float64, len(v))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dense := hessian.DensePoint(pool.X.Row(0), pool.H.Row(0))
		mat.MatVec(dst, dense, v)
	}
}

// --- Table VI: Exact vs Approx RELAX and ROUND. ---

func tableVIProblem() *firal.Problem { return benchProblem(250, 20, 19, 6) }

func BenchmarkTableVI_RelaxExact(b *testing.B) {
	p := tableVIProblem()
	for i := 0; i < b.N; i++ {
		if _, err := firal.RelaxExact(context.Background(), p, 5, firal.RelaxOptions{FixedIterations: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVI_RelaxApprox(b *testing.B) {
	p := tableVIProblem()
	for i := 0; i < b.N; i++ {
		if _, err := firal.RelaxFast(context.Background(), p, 5, firal.RelaxOptions{FixedIterations: 2, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVI_RoundExact(b *testing.B) {
	p := tableVIProblem()
	z := make([]float64, p.N())
	mat.Fill(z, 3/float64(p.N()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := firal.RoundExact(p, z, 3, firal.RoundOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVI_RoundApprox(b *testing.B) {
	p := tableVIProblem()
	z := make([]float64, p.N())
	mat.Fill(z, 3/float64(p.N()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := firal.RoundFast(p, z, 3, firal.RoundOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 5: single-device RELAX/ROUND at increasing d and c. ---

func benchmarkFig5Relax(b *testing.B, d, c int) {
	p := benchProblem(2000, d, c, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := firal.RelaxFast(context.Background(), p, 10, firal.RelaxOptions{
			FixedIterations: 1, Probes: 10, CGTol: 1e-30, CGMaxIter: 10, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_RelaxD16(b *testing.B) { benchmarkFig5Relax(b, 16, 10) }
func BenchmarkFig5_RelaxD32(b *testing.B) { benchmarkFig5Relax(b, 32, 10) }
func BenchmarkFig5_RelaxD64(b *testing.B) { benchmarkFig5Relax(b, 64, 10) }
func BenchmarkFig5_RelaxC8(b *testing.B)  { benchmarkFig5Relax(b, 24, 8) }
func BenchmarkFig5_RelaxC16(b *testing.B) { benchmarkFig5Relax(b, 24, 16) }
func BenchmarkFig5_RelaxC32(b *testing.B) { benchmarkFig5Relax(b, 24, 32) }

func benchmarkFig5Round(b *testing.B, d, c int) {
	p := benchProblem(2000, d, c, 8)
	z := make([]float64, p.N())
	mat.Fill(z, 10/float64(p.N()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := firal.RoundFast(p, z, 1, firal.RoundOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_RoundD16(b *testing.B) { benchmarkFig5Round(b, 16, 10) }
func BenchmarkFig5_RoundD32(b *testing.B) { benchmarkFig5Round(b, 32, 10) }
func BenchmarkFig5_RoundD64(b *testing.B) { benchmarkFig5Round(b, 64, 10) }
func BenchmarkFig5_RoundC8(b *testing.B)  { benchmarkFig5Round(b, 24, 8) }
func BenchmarkFig5_RoundC16(b *testing.B) { benchmarkFig5Round(b, 24, 16) }
func BenchmarkFig5_RoundC32(b *testing.B) { benchmarkFig5Round(b, 24, 32) }

// --- Figs. 6–7: distributed RELAX/ROUND at the paper's rank counts. ---

func benchmarkFig6Relax(b *testing.B, ranks int) {
	labeled, pool := experiments.SynthSets(20, 3000, 32, 10, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mpi.Run(ranks, func(c *mpi.Comm) {
			sh := distfiral.MakeShard(labeled, pool, ranks, c.Rank())
			_, err := distfiral.Relax(context.Background(), c, sh, 10, firal.RelaxOptions{
				FixedIterations: 1, Probes: 10, CGTol: 1e-30, CGMaxIter: 10, Seed: 1,
			})
			if err != nil {
				b.Error(err)
			}
		})
	}
}

func BenchmarkFig6_RelaxP1(b *testing.B)  { benchmarkFig6Relax(b, 1) }
func BenchmarkFig6_RelaxP2(b *testing.B)  { benchmarkFig6Relax(b, 2) }
func BenchmarkFig6_RelaxP3(b *testing.B)  { benchmarkFig6Relax(b, 3) }
func BenchmarkFig6_RelaxP6(b *testing.B)  { benchmarkFig6Relax(b, 6) }
func BenchmarkFig6_RelaxP12(b *testing.B) { benchmarkFig6Relax(b, 12) }

func benchmarkFig7Round(b *testing.B, ranks int) {
	labeled, pool := experiments.SynthSets(20, 3000, 32, 10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mpi.Run(ranks, func(c *mpi.Comm) {
			sh := distfiral.MakeShard(labeled, pool, ranks, c.Rank())
			z := make([]float64, sh.PoolLocal.N())
			mat.Fill(z, 1.0/3000)
			if _, err := distfiral.Round(context.Background(), c, sh, z, 1, 0); err != nil {
				b.Error(err)
			}
		})
	}
}

func BenchmarkFig7_RoundP1(b *testing.B)  { benchmarkFig7Round(b, 1) }
func BenchmarkFig7_RoundP2(b *testing.B)  { benchmarkFig7Round(b, 2) }
func BenchmarkFig7_RoundP3(b *testing.B)  { benchmarkFig7Round(b, 3) }
func BenchmarkFig7_RoundP6(b *testing.B)  { benchmarkFig7Round(b, 6) }
func BenchmarkFig7_RoundP12(b *testing.B) { benchmarkFig7Round(b, 12) }

// --- Tables II/IV sanity: report the analytic ratios as metrics. ---

func BenchmarkTableII_ComplexityRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n, d, c := 50000, 383, 1000
		rStorage := perfmodel.ExactStorage(n, d, c) / perfmodel.ApproxRelaxStorage(n, d, c, 10)
		rRound := perfmodel.ExactRoundWork(200, n, d, c) / perfmodel.ApproxRoundWork(200, n, d, c)
		b.ReportMetric(rStorage, "storage-ratio")
		b.ReportMetric(rRound, "round-work-ratio")
	}
}

// --- MPI collective microbenchmarks (substrate of Table IV). ---

func benchmarkAllreduce(b *testing.B, ranks, words int) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mpi.Run(ranks, func(c *mpi.Comm) {
			data := make([]float64, words)
			c.Allreduce(data, mpi.Sum)
		})
	}
}

func BenchmarkTableIV_AllreduceP3(b *testing.B)  { benchmarkAllreduce(b, 3, 4096) }
func BenchmarkTableIV_AllreduceP12(b *testing.B) { benchmarkAllreduce(b, 12, 4096) }

func ExampleSelector_names() {
	for _, s := range []pub.Selector{pub.Random(), pub.KMeans(), pub.Entropy(),
		pub.ApproxFIRAL(pub.FIRALOptions{}), pub.ExactFIRAL(pub.FIRALOptions{})} {
		fmt.Println(s.Name())
	}
	// Output:
	// Random
	// K-Means
	// Entropy
	// Approx-FIRAL
	// Exact-FIRAL
}
