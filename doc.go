// Package firal is a Go reproduction of "A Scalable Algorithm for Active
// Learning" (Chen, Wen, Biros; SC24, arXiv:2409.07392): the Approx-FIRAL
// batch active-learning algorithm for multiclass logistic regression,
// together with the exact FIRAL baseline, the Random/K-Means/Entropy
// comparison selectors, a distributed-memory parallel implementation over
// an in-process MPI runtime, and the synthetic embedding benchmarks of the
// paper's Table V.
//
// The import path of this module is "repro"; the package name is firal.
//
// # Quick start
//
//	cfg := firal.CIFAR10Like().Scale(0.1).Generate(42)
//	learner, _ := firal.NewLearner(cfg)
//	reports, _ := learner.Run(firal.ApproxFIRAL(firal.FIRALOptions{}),
//	    cfg.Rounds, cfg.Budget)
//	for _, r := range reports {
//	    fmt.Printf("labels=%d eval accuracy=%.3f\n", r.LabeledCount, r.EvalAccuracy)
//	}
//
// The five built-in selection strategies are Random, KMeans, Entropy,
// ExactFIRAL and ApproxFIRAL; DistributedFIRAL runs Approx-FIRAL sharded
// over simulated distributed-memory ranks. Custom strategies implement the
// Selector interface.
//
// Implementation packages live under internal/: internal/firal holds the
// RELAX/ROUND solvers, internal/mat the dense linear algebra,
// internal/mpi the message-passing runtime, and internal/experiments the
// harnesses that regenerate every table and figure of the paper (see
// DESIGN.md and EXPERIMENTS.md).
package firal
