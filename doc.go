// Package firal is a Go reproduction of "A Scalable Algorithm for Active
// Learning" (Chen, Wen, Biros; SC24, arXiv:2409.07392): the Approx-FIRAL
// batch active-learning algorithm for multiclass logistic regression,
// together with the exact FIRAL baseline, the Random/K-Means/Entropy
// comparison selectors, a distributed-memory parallel implementation over
// an in-process MPI runtime, and the synthetic embedding benchmarks of the
// paper's Table V.
//
// The import path of this module is "repro"; the package name is firal.
//
// # Quick start
//
// Sessions are driven through the context-aware API: selectors come from
// the registry by name, the schedule and policies from functional run
// options, and per-round results stream through an observer while the
// session runs:
//
//	cfg := firal.CIFAR10Like().Scale(0.1).Generate(42)
//	learner, _ := firal.NewLearner(cfg)
//	selector, _ := firal.New("approx-firal", firal.SelectorOptions{})
//	reports, err := learner.RunContext(ctx, selector,
//	    firal.WithRounds(cfg.Rounds),
//	    firal.WithBudget(cfg.Budget),
//	    firal.WithObserver(func(r *firal.RoundReport) {
//	        fmt.Printf("labels=%d eval accuracy=%.3f\n", r.LabeledCount, r.EvalAccuracy)
//	    }),
//	    firal.WithStopCriterion(firal.TargetAccuracy(0.95)),
//	)
//
// Cancelling ctx aborts the session mid-selection — the FIRAL selectors
// poll the context inside the RELAX mirror-descent loop and the inner CG
// solves — and RunContext returns the reports of the rounds completed so
// far together with the context's error. Stop criteria (TargetAccuracy,
// MaxDuration, PoolExhausted, or any custom StopCriterion) end long runs
// on policy instead of a fixed round count.
//
// # Selector registry
//
// The eight built-in strategies — Random, K-Means, Entropy, Margin,
// Least-Confidence, Exact-FIRAL, Approx-FIRAL and Dist-FIRAL — register
// themselves at init; Names lists them and New instantiates one by
// case-insensitive name. Custom strategies implement the Selector
// interface (or wrap a function with SelectorFunc) and may Register a
// factory to become name-addressable alongside the built-ins.
//
// The previous Run/Step entry points remain as deprecated wrappers over
// RunContext/StepContext for one release.
//
// # Performance substrate
//
// The dense kernels under internal/mat are cache-blocked and panel-packed
// (a GotoBLAS-style decomposition with an SSE2 micro-kernel on amd64 and
// a portable scalar fallback), and the solver hot paths draw their
// scratch from a mat.Workspace — a size-keyed arena of reusable buffers.
// The Workspace contract: a workspace is owned by exactly one goroutine
// (the simulated MPI ranks each carry their own); buffers obtained from
// it belong to the caller until returned; contents are unspecified on
// acquisition; and a nil workspace degrades to allocate-per-call
// everywhere one is accepted.
//
// # Streaming pools
//
// Pool features are consumed through a block-streaming abstraction
// rather than one resident matrix. A dataset.PoolSource serves an n×d
// pool in contiguous row windows (NumRows, Dim, ReadRows, Close) with
// three implementations — an in-memory matrix (zero-copy), memory-mapped
// little-endian float32 shard files, and numeric CSV — and the solver
// kernels visit it block by block through the hessian.Pool interface
// (resident hessian.Set or streaming hessian.Stream). The contract:
// sources surface data errors at open/validation time and tolerate
// concurrent in-range ReadRows; class probabilities stay resident (n×c,
// a factor d/c smaller than the features); scratch is bounded by one
// block (dataset.DefaultBlockRows rows) regardless of pool size; and a
// pool that fits one block takes a path identical to the historical
// resident kernels, so the zero-alloc steady-state pins hold for
// resident and streamed pools alike. Selection from a million-point pool
// therefore runs without materializing an n×d float64 matrix (see the
// pool_stream_n1e6_d64 entry in BENCH_round.json, cmd/firal's -shards
// mode, and examples/streaming); only the exact Algorithm-1 solvers,
// which assemble dense pool Hessians, require residency and refuse a
// streamed pool with a typed error. ARCHITECTURE.md documents the full
// contract.
//
// # Selection as a service
//
// cmd/firald serves the selectors as a long-lived HTTP/JSON service:
// tenants register pools (shard paths or inline CSV), extend labels as
// the active-learning dialogue progresses, and run asynchronous,
// admission-controlled train+select rounds whose RELAX state is
// checkpointed every iteration — a killed server restarts, re-enqueues
// the interrupted round, and resumes the mirror-descent trajectory
// bit-for-bit. See ARCHITECTURE.md § Service layer and examples/service
// for the API walkthrough.
//
// # Distributed transport
//
// The message-passing collectives under internal/mpi are written against
// a pluggable Transport (tagged point-to-point send/recv with
// deadlines): the in-process mailbox world behind mpi.Run, and a
// length-prefixed TCP transport with rendezvous bootstrap for real
// multi-process runs (cmd/firal -transport tcp -peers host:port
// -ranks p -rank r). Allreduces optionally run as a chunked pipeline
// (Comm.SetChunk) that overlaps transfer with local reduction while
// staying bit-identical to the unchunked schedule. With an operation
// timeout set, a dead rank surfaces as mpi.ErrRankLost; survivors agree
// on the dead set (Comm.Heal), and distfiral.SelectResilient re-shards
// the survivors and resumes the interrupted RELAX iteration from the
// last globally-agreed checkpoint, reproducing bit-for-bit what a fresh
// run at the reduced rank count would select. A transport conformance
// suite (internal/mpi/mpitest) and fault-injection tests pin the
// contract; see ARCHITECTURE.md § Distributed transport and
// examples/distributed.
//
// # Incremental pools
//
// Pools are mutable between rounds and round t+1 costs what changed:
// dataset.LiveSource appends segments visibly to open readers (atomic
// snapshots, generation-counted) and dataset.TombstoneView compacts
// retired rows; mat.Cholesky factors follow labeled/tombstone events by
// O(d²) rank-1 updates and hyperbolic downdates (with an automatic
// refactor on breakdown); internal/firal's Incremental state sweeps only
// the appended window of a grown pool and starts ROUND directly from the
// maintained factors, selecting exactly what a from-scratch rebuild
// would; RelaxOptions.WarmStart seeds mirror descent from the previous
// round's weights reprojected onto the grown simplex. The service layer
// exposes pool appends (POST /v1/sessions/{id}/pool), warm-starts each
// round from the last one's converged weights, and re-scores only
// appended rows when the model is unchanged. The delta_round_n1e5_d64
// entry in BENCH_round.json tracks the incremental round's cost against
// the full-rescore round. See ARCHITECTURE.md § Incremental pools.
//
// Parallel loops run on a persistent worker pool (internal/parallel):
// workers live for the life of the process, parked on channels when
// idle, so a steady-state kernel call forks no goroutines. The pool is
// sized by GOMAXPROCS (or parallel.SetMaxWorkers, which resizes it);
// sessions cap their own parallelism with scoped parallel limits
// (WithParallelism), which compose by minimum across concurrent
// sessions instead of racing on process state. Hot paths hand the pool
// pre-built dispatch funcs from pooled task records — never fresh
// closures, whose captures would heap-allocate per call.
//
// With a warm workspace the Lemma-2 Hessian matvec, CG iterations, the
// preconditioner rebuild (in-place Cholesky refactorization), and the
// full ROUND candidate loop — rescore, eigensolves, ν bisection, block
// inverse rebuild — run at 0 allocs/op on multicore as well as serial
// (pinned by AllocsPerRun regression tests and a dedicated CI job).
// cmd/firal-bench records the kernel trajectory in BENCH_round.json and
// can diff a fresh run against it (-against/-tol).
//
// Implementation packages live under internal/: internal/firal holds the
// RELAX/ROUND solvers, internal/mat the dense linear algebra,
// internal/mpi the message-passing runtime, and internal/experiments the
// harnesses that regenerate every table and figure of the paper (see
// DESIGN.md and EXPERIMENTS.md).
package firal
