module repro

go 1.24

// golang.org/x/tools is the repo's first (and only) external dependency,
// pulled in for the go/analysis framework behind cmd/firal-vet. It is
// pinned to the exact revision the Go 1.24.0 toolchain itself vendors for
// `go vet` (see $GOROOT/src/cmd/go.mod), and the needed package subset is
// committed under vendor/ so builds stay hermetic — no network, no module
// proxy, and the analyzers agree bit-for-bit with the vet driver shipped
// in the toolchain. Rationale in ARCHITECTURE.md § Contract enforcement.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
